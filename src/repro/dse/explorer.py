"""Iterative Pareto-guided design-space exploration.

The case study of Section IV-C: given a kernel's design space, a small initial
fraction of design points is sampled (HLS is run for them and a power
predictor estimates their dynamic power); the latency/predicted-power Pareto
frontier of the sampled set is computed, and the sampling algorithm of HL-Pow
is applied to pick the not-yet-sampled candidates that are most likely to be
Pareto-optimal — those whose *directive configuration* is closest to the
configurations currently on the approximate frontier — plus a small random
exploration component.  The loop repeats until the total sampling budget is
met.

The quality of the exploration is measured by ADRS between the exact Pareto
frontier (ground-truth dynamic power of every point, which in the paper
requires implementing and measuring everything) and the approximate frontier
selected using the predictor.  A more accurate predictor both ranks the
sampled points correctly and steers sampling toward genuinely Pareto-optimal
configurations, which is how PowerGear improves ADRS over HL-Pow and Vivado in
Table III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.dse.pareto import adrs, pareto_front
from repro.utils.rng import spawn_rng


@dataclass
class DesignCandidate:
    """One design point of the explored space."""

    index: int
    latency: float
    true_power: float
    config_vector: np.ndarray
    payload: object | None = None

    def __post_init__(self) -> None:
        self.config_vector = np.asarray(self.config_vector, dtype=float).reshape(-1)
        if self.latency <= 0:
            raise ValueError("latency must be positive")


#: A predictor maps a list of candidates to predicted dynamic power values.
Predictor = Callable[[list[DesignCandidate]], np.ndarray]


@dataclass(frozen=True)
class DSEConfig:
    """Sampling budgets of the exploration loop (paper: 2 % initial, 20–40 % total)."""

    initial_budget: float = 0.02
    total_budget: float = 0.4
    batch_size: int = 4
    exploration_fraction: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.initial_budget <= self.total_budget <= 1.0:
            raise ValueError("budgets must satisfy 0 < initial <= total <= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not 0.0 <= self.exploration_fraction <= 1.0:
            raise ValueError("exploration_fraction must be in [0, 1]")


@dataclass
class ExplorationState:
    """The complete mid-flight state of one exploration loop.

    Everything :meth:`ParetoExplorer.step` reads or writes lives here — the
    sampled set, the prediction memo, the history log and the *serialised*
    generator state — so a loop can be paused after any iteration,
    round-tripped through JSON (the job checkpoint format) and resumed in a
    different process with a bitwise-identical trajectory: restoring
    ``rng_state`` onto a fresh PCG64 generator continues the exact random
    stream the interrupted run would have drawn.
    """

    total_points: int
    budget_count: int
    sampled: list[int]
    predictions: dict[int, float]
    history: list[dict]
    #: ``numpy.random.Generator.bit_generator.state`` — a JSON-safe dict.
    rng_state: dict
    done: bool = False
    iterations: int = 0

    def to_json(self) -> dict:
        """JSON-safe snapshot (prediction keys become strings)."""
        return {
            "total_points": self.total_points,
            "budget_count": self.budget_count,
            "sampled": [int(i) for i in self.sampled],
            "predictions": {str(k): float(v) for k, v in self.predictions.items()},
            "history": self.history,
            "rng_state": self.rng_state,
            "done": self.done,
            "iterations": self.iterations,
        }

    @staticmethod
    def from_json(obj: dict) -> "ExplorationState":
        return ExplorationState(
            total_points=int(obj["total_points"]),
            budget_count=int(obj["budget_count"]),
            sampled=[int(i) for i in obj["sampled"]],
            predictions={int(k): float(v) for k, v in obj["predictions"].items()},
            history=list(obj["history"]),
            rng_state=obj["rng_state"],
            done=bool(obj["done"]),
            iterations=int(obj["iterations"]),
        )

    def restore_rng(self) -> np.random.Generator:
        """A generator continuing this state's random stream exactly."""
        rng = np.random.default_rng()
        state = dict(self.rng_state)
        inner = state.get("state")
        if isinstance(inner, dict):
            # JSON round-trips PCG64's 128-bit ints losslessly (Python ints
            # are arbitrary precision), but keys may arrive as strings from
            # foreign serialisers; normalise defensively.
            state["state"] = {k: int(v) for k, v in inner.items()}
        rng.bit_generator.state = state
        return rng


@dataclass
class DSEResult:
    """Outcome of one exploration run."""

    sampled_indices: list[int]
    approximate_pareto_indices: list[int]
    exact_pareto_indices: list[int]
    adrs: float
    history: list[dict] = field(default_factory=list)
    #: Predicted dynamic power of every sampled candidate, by candidate index.
    #: Exposed so callers (e.g. the serving layer) can reuse or cache the
    #: predictor outputs the exploration already paid for.
    predictions: dict[int, float] = field(default_factory=dict)

    @property
    def num_sampled(self) -> int:
        return len(self.sampled_indices)


class ParetoExplorer:
    """Runs the iterative Pareto-guided sampling loop."""

    def __init__(self, config: DSEConfig | None = None) -> None:
        self.config = config or DSEConfig()

    # ------------------------------------------------------------------ public

    def explore(
        self, candidates: Sequence[DesignCandidate], predictor: Predictor
    ) -> DSEResult:
        """Explore ``candidates`` using ``predictor`` for dynamic power estimates."""
        candidates = list(candidates)
        state = self.start(candidates)
        while not state.done:
            self.step(candidates, state, predictor)
        return self.finalize(candidates, state)

    def start(self, candidates: Sequence[DesignCandidate]) -> ExplorationState:
        """Draw the initial random sample and return the loop's starting state.

        The state is everything: the blocking :meth:`explore` is literally
        ``start`` + ``step``-until-done + ``finalize``, so an incremental
        driver (the async job service) that checkpoints the state between
        steps reproduces the blocking trajectory bit for bit.
        """
        candidates = list(candidates)
        if len(candidates) < 3:
            raise ValueError("design-space exploration needs at least three candidates")
        config = self.config
        rng = spawn_rng(config.seed, "dse")
        total_points = len(candidates)
        initial_count = max(2, int(round(config.initial_budget * total_points)))
        budget_count = max(initial_count, int(round(config.total_budget * total_points)))
        budget_count = min(budget_count, total_points)
        sampled = [
            int(i)
            for i in rng.choice(
                total_points, size=min(initial_count, total_points), replace=False
            )
        ]
        return ExplorationState(
            total_points=total_points,
            budget_count=budget_count,
            sampled=sampled,
            predictions={},
            history=[],
            rng_state=rng.bit_generator.state,
        )

    def step(
        self,
        candidates: Sequence[DesignCandidate],
        state: ExplorationState,
        predictor: Predictor,
    ) -> dict:
        """Run one loop iteration in place; returns the iteration's update.

        One iteration = predict the newly sampled batch, recompute the
        approximate frontier, log the history entry, and (budget permitting)
        select the next batch.  The returned update is the history entry plus
        the frontier indices — the unit the job service streams to clients.
        """
        if state.done:
            raise ValueError("exploration is already finished")
        candidates = list(candidates)
        sampled = state.sampled
        predictions = state.predictions
        new_indices = [i for i in sampled if i not in predictions]
        if new_indices:
            predicted = predictor([candidates[i] for i in new_indices])
            for position, index in enumerate(new_indices):
                predictions[index] = float(predicted[position])

        frontier_local = self._approximate_frontier(candidates, sampled, predictions)
        entry = {
            "sampled": len(sampled),
            "frontier_size": len(frontier_local),
            # The candidate batch this iteration pushed through the
            # predictor — the unit the serving runtime pools/coalesces;
            # recorded so callers can audit batch shapes end to end.
            # Plain ints: the first batch comes from rng.choice (int64)
            # and the field must stay JSON-serialisable.
            "new_batch": [int(i) for i in new_indices],
        }
        state.history.append(entry)
        if len(sampled) >= state.budget_count:
            state.done = True
        else:
            rng = state.restore_rng()
            batch = self._select_batch(
                candidates, sampled, frontier_local, rng, state.budget_count - len(sampled)
            )
            state.rng_state = rng.bit_generator.state
            if not batch:
                state.done = True
            else:
                sampled.extend(int(i) for i in batch)
        state.iterations += 1
        return {
            "iteration": state.iterations,
            "frontier": [int(i) for i in frontier_local],
            "done": state.done,
            **entry,
        }

    def finalize(
        self, candidates: Sequence[DesignCandidate], state: ExplorationState
    ) -> DSEResult:
        """Score a finished (or abandoned) state against the exact frontier."""
        candidates = list(candidates)
        approximate = self._approximate_frontier(
            candidates, state.sampled, state.predictions
        )
        exact = self._exact_frontier(candidates)
        adrs_value = adrs(
            [(candidates[i].latency, candidates[i].true_power) for i in exact],
            [(candidates[i].latency, candidates[i].true_power) for i in approximate],
        )
        return DSEResult(
            sampled_indices=list(state.sampled),
            approximate_pareto_indices=approximate,
            exact_pareto_indices=exact,
            adrs=adrs_value,
            history=list(state.history),
            predictions=dict(state.predictions),
        )

    # --------------------------------------------------------------- internals

    @staticmethod
    def _approximate_frontier(
        candidates: list[DesignCandidate],
        sampled: list[int],
        predictions: dict[int, float],
    ) -> list[int]:
        points = np.array(
            [[candidates[i].latency, predictions.get(i, np.inf)] for i in sampled]
        )
        frontier_positions = pareto_front(points)
        return [sampled[p] for p in frontier_positions]

    @staticmethod
    def _exact_frontier(candidates: list[DesignCandidate]) -> list[int]:
        points = np.array([[c.latency, c.true_power] for c in candidates])
        return [int(i) for i in pareto_front(points)]

    def _select_batch(
        self,
        candidates: list[DesignCandidate],
        sampled: list[int],
        frontier: list[int],
        rng: np.random.Generator,
        remaining: int,
    ) -> list[int]:
        """Pick the next candidates to sample.

        Candidates whose directive configuration is closest to the current
        approximate-Pareto configurations are prioritised; a fraction of the
        batch is random exploration to avoid collapsing onto a local frontier.
        """
        sampled_set = set(sampled)
        unsampled = [i for i in range(len(candidates)) if i not in sampled_set]
        if not unsampled:
            return []
        batch_size = min(self.config.batch_size, remaining, len(unsampled))

        # Vectorised nearest-frontier distances instead of a Python loop over
        # candidates: this selection step runs once per exploration iteration
        # over the whole remaining space, and is the explorer-side hot spot
        # when the serving runtime drives large candidate spaces through
        # `explore`.  Chunked over the unsampled rows so the broadcast
        # temporary stays bounded (~a few MB) on very large spaces.
        frontier_configs = np.stack([candidates[i].config_vector for i in frontier])
        unsampled_configs = np.stack([candidates[i].config_vector for i in unsampled])
        per_row = frontier_configs.shape[0] * frontier_configs.shape[1]
        chunk = max(1, 500_000 // max(1, per_row))
        distances = np.empty(len(unsampled))
        for start in range(0, len(unsampled), chunk):
            block = unsampled_configs[start : start + chunk]
            deltas = block[:, None, :] - frontier_configs[None, :, :]
            distances[start : start + chunk] = np.min(
                np.linalg.norm(deltas, axis=2), axis=1
            )
        order = np.argsort(distances)

        exploit_count = max(1, int(round(batch_size * (1.0 - self.config.exploration_fraction))))
        exploit_count = min(exploit_count, batch_size)
        batch = [unsampled[int(i)] for i in order[:exploit_count]]

        explore_pool = [i for i in unsampled if i not in set(batch)]
        explore_count = batch_size - len(batch)
        if explore_count > 0 and explore_pool:
            extra = rng.choice(
                len(explore_pool), size=min(explore_count, len(explore_pool)), replace=False
            )
            batch.extend(explore_pool[int(i)] for i in extra)
        return batch
