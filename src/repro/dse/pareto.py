"""Pareto-front utilities and the ADRS metric.

Both objectives (latency in cycles and dynamic power in watts) are minimised.
ADRS follows the standard definition used by the paper (Eq. 8): the average,
over the exact Pareto set Γ, of the distance to the closest point of the
approximate set Ω, where the distance between two design points is the worst
relative degradation across objectives (clamped at zero when the approximate
point dominates).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ParetoPoint:
    """One design point in objective space."""

    latency: float
    power: float

    def as_array(self) -> np.ndarray:
        return np.array([self.latency, self.power], dtype=float)


def _as_matrix(points) -> np.ndarray:
    if isinstance(points, np.ndarray):
        matrix = np.asarray(points, dtype=float)
    else:
        matrix = np.array(
            [p.as_array() if isinstance(p, ParetoPoint) else np.asarray(p, dtype=float) for p in points]
        )
    if matrix.ndim != 2 or matrix.shape[1] != 2:
        raise ValueError("points must be an (N, 2) array of (latency, power)")
    if matrix.shape[0] == 0:
        raise ValueError("at least one point is required")
    return matrix


def pareto_front(points) -> np.ndarray:
    """Indices of the non-dominated points (both objectives minimised).

    A point dominates another if it is no worse in both objectives and strictly
    better in at least one.  Duplicate objective vectors are all retained.
    """
    matrix = _as_matrix(points)
    order = np.lexsort((matrix[:, 1], matrix[:, 0]))
    front: list[int] = []
    best_power = np.inf
    for index in order:
        power = matrix[index, 1]
        if power < best_power:
            front.append(int(index))
            best_power = power
        elif (
            front
            and power == best_power
            and matrix[index, 0] == matrix[front[-1], 0]
        ):
            # Exact duplicates of a frontier point are all retained; anything
            # merely *close* to the frontier is dominated and must be dropped,
            # otherwise the front is not mutually non-dominated.
            front.append(int(index))
    return np.array(sorted(front), dtype=int)


def _pair_distance(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Worst relative degradation of ``candidate`` w.r.t. ``reference`` (>= 0)."""
    scale = np.maximum(np.abs(reference), 1e-12)
    return float(np.max(np.maximum((candidate - reference) / scale, 0.0)))


def adrs(exact_points, approximate_points) -> float:
    """Average distance from reference set (Eq. 8); lower is better."""
    exact = _as_matrix(exact_points)
    approx = _as_matrix(approximate_points)
    distances = []
    for reference in exact:
        distances.append(min(_pair_distance(reference, candidate) for candidate in approx))
    return float(np.mean(distances))
