"""Activity simulation: run a lowered design on a stimulus and collect statistics.

``simulate_activity`` is the reproduction of the paper's probe-instrumented
co-simulation step: it interprets the design's IR on the generated testbench
inputs with an :class:`~repro.activity.tracer.ActivityTracer` attached, and
wraps the accumulated statistics in an :class:`ActivityProfile`.

Because the raw statistics (Hamming sums and change counts) depend only on the
IR and the stimulus — not on the schedule — a profile computed once for a
given ``(kernel, unroll configuration, stimulus)`` can be reused across every
design point that shares that IR, with per-design normalisation by the
design's latency.  The dataset generator exploits this to keep full
design-space sweeps fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.activity.stimuli import StimulusGenerator
from repro.activity.tracer import ActivityTracer, EdgeActivity, ValueStreamStats
from repro.hls.frontend import LoweredDesign
from repro.ir.interpreter import IRInterpreter


@dataclass
class ActivityProfile:
    """Per-instruction value-stream statistics of one simulated design."""

    kernel_name: str
    dynamic_instructions: int
    result_streams: dict[int, ValueStreamStats] = field(default_factory=dict)
    operand_streams: dict[tuple[int, int], ValueStreamStats] = field(default_factory=dict)

    # -- per-stream accessors ---------------------------------------------------

    def result_stats(self, uid: int) -> ValueStreamStats:
        return self.result_streams.get(uid, ValueStreamStats(bit_width=0))

    def operand_stats(self, uid: int, slot: int) -> ValueStreamStats:
        return self.operand_streams.get((uid, slot), ValueStreamStats(bit_width=0))

    def edge_activity(
        self, src_uid: int, dst_uid: int, operand_slot: int, latency: int
    ) -> EdgeActivity:
        src = self.result_stats(src_uid)
        snk = self.operand_stats(dst_uid, operand_slot)
        return EdgeActivity(
            sa_src=src.switching_activity(latency),
            sa_snk=snk.switching_activity(latency),
            ar_src=src.activation_rate(latency),
            ar_snk=snk.activation_rate(latency),
        )

    def node_activity(self, uid: int, operand_slots: int, latency: int) -> dict[str, float]:
        """Numeric node features: activation rate plus input/output/overall switching."""
        out = self.result_stats(uid)
        input_sa = 0.0
        for slot in range(operand_slots):
            input_sa += self.operand_stats(uid, slot).switching_activity(latency)
        output_sa = out.switching_activity(latency)
        return {
            "activation_rate": out.activation_rate(latency),
            "input_switching": input_sa,
            "output_switching": output_sa,
            "overall_switching": input_sa + output_sa,
        }

    # -- aggregates used by the power substrate ---------------------------------

    def total_hamming(self) -> int:
        """Total Hamming activity across all produced values (a proxy for design toggling)."""
        return int(sum(stats.hamming_sum for stats in self.result_streams.values()))

    def average_toggle_rate(self, latency: int) -> float:
        """Average per-cycle, per-stream toggling, used by the Vivado-like estimator."""
        if not self.result_streams:
            return 0.0
        activities = [s.switching_activity(latency) for s in self.result_streams.values()]
        return float(np.mean(activities))


def simulate_activity(
    design: LoweredDesign,
    stimuli: dict[str, np.ndarray] | None = None,
    seed: int = 0,
    profile: str = "uniform",
) -> ActivityProfile:
    """Execute ``design`` on a testbench stimulus and return its activity profile."""
    if stimuli is None:
        stimuli = StimulusGenerator(seed=seed, profile=profile).for_kernel(design.kernel)
    interpreter = IRInterpreter(design.function)
    tracer = ActivityTracer()
    interpreter.add_observer(tracer)
    interpreter.run(stimuli)
    return ActivityProfile(
        kernel_name=design.kernel.name,
        dynamic_instructions=interpreter.dynamic_instruction_count,
        result_streams=tracer.result_streams,
        operand_streams=tracer.operand_streams,
    )
