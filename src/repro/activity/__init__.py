"""Switching-activity extraction (Section III-A, feature annotation).

The paper instruments the HLS IR with detection probes, links them with the
C testbench, and executes the result to trace the values flowing over every
DFG edge; switching activities (Eq. 2) and activation rates (Eq. 3) are then
computed from Hamming distances between consecutive values.  Here the
:class:`~repro.ir.interpreter.IRInterpreter` plays the role of the
instrumented executable, the stimulus generator plays the role of the C
testbench, and :class:`~repro.activity.tracer.ActivityTracer` accumulates the
same per-edge statistics online.
"""

from repro.activity.stimuli import StimulusGenerator, generate_stimuli
from repro.activity.tracer import ActivityTracer, ValueStreamStats, EdgeActivity
from repro.activity.simulator import ActivityProfile, simulate_activity

__all__ = [
    "StimulusGenerator",
    "generate_stimuli",
    "ActivityTracer",
    "ValueStreamStats",
    "EdgeActivity",
    "ActivityProfile",
    "simulate_activity",
]
