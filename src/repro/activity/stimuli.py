"""Testbench stimulus generation.

Dynamic power depends on the runtime workload; the paper drives each design
with its PolyBench testbench inputs.  The stimulus generator produces
reproducible input arrays for a kernel, with a configurable *data profile*
that controls how much the values toggle:

* ``"uniform"`` — independent uniform values (high switching),
* ``"smooth"`` — low-frequency correlated values (moderate switching),
* ``"sparse"`` — mostly zeros with occasional spikes (low switching).

Different profiles let tests and benchmarks verify that the extracted
switching activities actually respond to data characteristics, which is the
mechanism PowerGear exploits to predict dynamic power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.spec import ArraySpec, KernelSpec
from repro.utils.rng import spawn_rng

DATA_PROFILES = ("uniform", "smooth", "sparse")


@dataclass
class StimulusGenerator:
    """Generates input arrays for a kernel's testbench."""

    seed: int = 0
    profile: str = "uniform"
    amplitude: float = 4.0

    def __post_init__(self) -> None:
        if self.profile not in DATA_PROFILES:
            raise ValueError(
                f"unknown data profile {self.profile!r}; expected one of {DATA_PROFILES}"
            )
        if self.amplitude <= 0:
            raise ValueError("amplitude must be positive")

    def array_values(self, spec: ArraySpec, kernel_name: str) -> np.ndarray:
        rng = spawn_rng(self.seed, "stimuli", kernel_name, spec.name, self.profile)
        shape = spec.shape
        if self.profile == "uniform":
            values = rng.uniform(-self.amplitude, self.amplitude, size=shape)
        elif self.profile == "smooth":
            base = rng.uniform(-self.amplitude, self.amplitude)
            ramp = np.linspace(0.0, 1.0, num=int(np.prod(shape))).reshape(shape)
            values = base + self.amplitude * 0.2 * ramp + rng.normal(0.0, 0.05, size=shape)
        else:  # sparse
            values = np.zeros(shape)
            mask = rng.random(shape) < 0.15
            values[mask] = rng.uniform(-self.amplitude, self.amplitude, size=int(mask.sum()))
        return values.astype(np.float64)

    def for_kernel(self, kernel: KernelSpec) -> dict[str, np.ndarray]:
        """Inputs for every array of ``kernel`` (outputs start at zero)."""
        inputs: dict[str, np.ndarray] = {}
        for spec in kernel.arrays:
            if spec.direction == "out":
                inputs[spec.name] = np.zeros(spec.shape)
            else:
                inputs[spec.name] = self.array_values(spec, kernel.name)
        return inputs


def generate_stimuli(
    kernel: KernelSpec, seed: int = 0, profile: str = "uniform"
) -> dict[str, np.ndarray]:
    """Convenience wrapper returning testbench inputs for ``kernel``."""
    return StimulusGenerator(seed=seed, profile=profile).for_kernel(kernel)
