"""Online accumulation of value-stream statistics during IR execution.

Equation (2) of the paper defines the switching activity of an edge direction
as the accumulated Hamming distance between consecutive values crossing the
edge, normalised by the design latency; Eq. (3) defines the activation rate as
the number of value-changing cycles over the latency.  Instead of storing full
value traces, :class:`ActivityTracer` keeps, for every static instruction,

* the statistics of its *result* stream (the values it produces — the ``src``
  direction of all its outgoing DFG edges), and
* the statistics of each *operand slot* stream (the values it consumes — the
  ``snk`` direction of the corresponding incoming edge),

updating Hamming sums and change counts online.  Normalisation by the latency
``L`` is deferred to :class:`~repro.activity.simulator.ActivityProfile`, which
lets one simulation be reused across design points that share the same IR but
have different schedules (e.g. pipelined vs not).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.bitpack import hamming_distance, to_bits
from repro.ir.instructions import Instruction
from repro.ir.types import VoidType


@dataclass
class ValueStreamStats:
    """Streaming statistics of one sequence of values (a ``src`` or ``snk`` stream)."""

    bit_width: int
    exec_count: int = 0
    change_count: int = 0
    hamming_sum: int = 0
    _last_bits: int | None = field(default=None, repr=False)

    def observe(self, bits: int) -> None:
        """Account for one more value in the stream."""
        self.exec_count += 1
        if self._last_bits is None:
            self._last_bits = bits
            return
        if bits != self._last_bits:
            self.change_count += 1
            self.hamming_sum += hamming_distance(bits, self._last_bits)
            self._last_bits = bits

    def switching_activity(self, latency: int) -> float:
        """Eq. (2): accumulated Hamming distance per cycle of design latency."""
        if latency <= 0:
            raise ValueError("latency must be positive")
        return self.hamming_sum / latency

    def activation_rate(self, latency: int) -> float:
        """Eq. (3): value-changing executions per cycle of design latency."""
        if latency <= 0:
            raise ValueError("latency must be positive")
        return self.change_count / latency

    def merged_with(self, other: "ValueStreamStats") -> "ValueStreamStats":
        """Combine two streams (used when datapath merging fuses DFG nodes)."""
        return ValueStreamStats(
            bit_width=max(self.bit_width, other.bit_width),
            exec_count=self.exec_count + other.exec_count,
            change_count=self.change_count + other.change_count,
            hamming_sum=self.hamming_sum + other.hamming_sum,
        )


@dataclass(frozen=True)
class EdgeActivity:
    """The four edge features of the power graph (Section III-A)."""

    sa_src: float
    sa_snk: float
    ar_src: float
    ar_snk: float

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.sa_src, self.sa_snk, self.ar_src, self.ar_snk)


class ActivityTracer:
    """Execution observer that accumulates per-instruction stream statistics."""

    def __init__(self) -> None:
        self.result_streams: dict[int, ValueStreamStats] = {}
        self.operand_streams: dict[tuple[int, int], ValueStreamStats] = {}
        self.observed_instructions = 0

    # -- ExecutionObserver interface ------------------------------------------

    def on_execute(self, instruction: Instruction, operand_values, result_value) -> None:
        self.observed_instructions += 1
        for slot, (operand, value) in enumerate(zip(instruction.operands, operand_values)):
            ty = operand.type
            if isinstance(ty, VoidType):
                continue
            key = (instruction.uid, slot)
            stats = self.operand_streams.get(key)
            if stats is None:
                stats = ValueStreamStats(bit_width=ty.bit_width)
                self.operand_streams[key] = stats
            stats.observe(to_bits(value, ty))

        if result_value is not None and instruction.has_result:
            stats = self.result_streams.get(instruction.uid)
            if stats is None:
                stats = ValueStreamStats(bit_width=instruction.type.bit_width)
                self.result_streams[instruction.uid] = stats
            stats.observe(to_bits(result_value, instruction.type))

    # -- accessors --------------------------------------------------------------

    def result_stats(self, uid: int) -> ValueStreamStats:
        return self.result_streams.get(uid, ValueStreamStats(bit_width=0))

    def operand_stats(self, uid: int, slot: int) -> ValueStreamStats:
        return self.operand_streams.get((uid, slot), ValueStreamStats(bit_width=0))

    def edge_activity(
        self, src_uid: int, dst_uid: int, operand_slot: int, latency: int
    ) -> EdgeActivity:
        """Edge features for the def-use edge ``src -> dst`` at ``operand_slot``."""
        src = self.result_stats(src_uid)
        snk = self.operand_stats(dst_uid, operand_slot)
        return EdgeActivity(
            sa_src=src.switching_activity(latency),
            sa_snk=snk.switching_activity(latency),
            ar_src=src.activation_rate(latency),
            ar_snk=snk.activation_rate(latency),
        )
