"""``repro.cluster`` — the multi-replica serving tier.

Scaling beyond one process, PR 7 of the serving stack: N replica processes
(each the full single-process service + gateway + HTTP server of PRs 1–6,
loaded bit-exact from one registry) behind a kernel-affinity router speaking
the same ``/v1/*`` dialect.

* :mod:`repro.cluster.hashring` — deterministic consistent-hash ring
  (``blake2b``, virtual nodes) giving each kernel a stable owner replica and
  a stable failover order;
* :mod:`repro.cluster.replica` — the picklable :class:`ReplicaSpec` recipe
  and the ``replica_main`` child entrypoint with its readiness handshake and
  SIGTERM graceful drain;
* :mod:`repro.cluster.manager` — :class:`ReplicaManager`, the blocking
  process-lifecycle layer (spawn / respawn / terminate, generation counters);
* :mod:`repro.cluster.router` — :class:`ClusterRouter`, the asyncio front
  end: affinity routing, retry-on-next-replica, health-poll → eject →
  respawn supervision, admission control reusing the gateway's backpressure
  types, and the ``/v1/cluster`` + ``/v1/events`` control plane.

The determinism contract survives the tier: registry load is bit-exact and
per-design predictions are batch-composition-invariant, so routed responses
are bitwise-identical to direct service calls — including across a replica
being SIGKILLed mid-run and respawned (``tests/test_cluster_router.py``).
"""

from __future__ import annotations

from repro.cluster.hashring import ConsistentHashRing, stable_hash
from repro.cluster.manager import ReplicaHandle, ReplicaManager, ReplicaStartupError
from repro.cluster.replica import ReplicaSpec, replica_main
from repro.cluster.router import ClusterConfig, ClusterRouter, RouterStats

__all__ = [
    "ClusterConfig",
    "ClusterRouter",
    "ConsistentHashRing",
    "ReplicaHandle",
    "ReplicaManager",
    "ReplicaSpec",
    "ReplicaStartupError",
    "RouterStats",
    "replica_main",
    "stable_hash",
]
