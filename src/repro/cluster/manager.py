"""Spawn and supervise the replica set.

:class:`ReplicaManager` owns the processes: it spawns ``num_replicas``
children from one :class:`~repro.cluster.replica.ReplicaSpec`, waits out each
readiness handshake, terminates them gracefully (SIGTERM → drain → SIGKILL
only as a last resort) and respawns individual replicas on demand.  It is
deliberately *policy-free*: deciding when a replica is unhealthy — and
therefore when to call :meth:`respawn` — is the router's job (it watches
``/healthz``); the manager just executes lifecycle verbs.

All methods are synchronous/blocking (process spawn + model load take real
time); the router calls them through an executor so its event loop never
stalls.  Each respawn bumps the replica's ``generation``, mirroring the
supervised pools' generation counter one level down.

Lifecycle transitions report through an observer with
``replica_event(kind, replica=..., **fields)`` —
:class:`repro.obs.ClusterObservability` in production — as
``replica_spawn`` / ``replica_ready`` / ``replica_exit`` events.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field

from repro.cluster.replica import ReplicaSpec, replica_main
from repro.runtime.pool import default_start_method

__all__ = ["ReplicaHandle", "ReplicaManager", "ReplicaStartupError"]

#: How long a child may take to build its service and report ready.  Model
#: load + pool construction is seconds; minutes means a wedged child.
READY_TIMEOUT_S = 120.0

#: Grace window between SIGTERM and SIGKILL at termination.
TERMINATE_GRACE_S = 10.0


class ReplicaStartupError(RuntimeError):
    """A replica exited, errored or timed out before reporting ready."""


@dataclass
class ReplicaHandle:
    """One live replica: its process, bound port and generation."""

    replica_id: str
    process: multiprocessing.process.BaseProcess
    host: str
    port: int
    generation: int
    spawned_at: float = field(default_factory=time.time)

    @property
    def pid(self) -> int | None:
        return self.process.pid

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class ReplicaManager:
    """Blocking lifecycle manager for ``num_replicas`` replica processes.

    Thread-safe: the router's health loop may :meth:`respawn` one replica
    from an executor thread while another thread reads :meth:`handles`.
    """

    def __init__(
        self,
        spec: ReplicaSpec,
        num_replicas: int = 2,
        *,
        start_method: str | None = None,
        ready_timeout: float = READY_TIMEOUT_S,
        observer: object | None = None,
    ) -> None:
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if ready_timeout <= 0:
            raise ValueError("ready_timeout must be > 0")
        self.spec = spec
        self.num_replicas = num_replicas
        self.start_method = start_method or default_start_method()
        self.ready_timeout = ready_timeout
        # Duck-typed observability sink (repro.obs.ClusterObservability):
        # anything with replica_event(kind, replica=..., **fields).  Always
        # best-effort — a broken observer must never break supervision.
        self.observer = observer
        self._lock = threading.Lock()
        self._handles: dict[str, ReplicaHandle] = {}
        self._generations: dict[str, int] = {}
        self._closed = False

    # ------------------------------------------------------------------ public

    def start(self) -> list[ReplicaHandle]:
        """Spawn the full replica set; blocks until every replica is ready.

        All-or-nothing: a startup failure tears down the replicas already
        spawned before re-raising, so a half-started cluster never leaks
        processes.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("replica manager is closed")
            if self._handles:
                return list(self._handles.values())
        spawned: list[ReplicaHandle] = []
        try:
            for index in range(self.num_replicas):
                spawned.append(self._spawn(f"replica-{index}", generation=0))
        except BaseException:
            for handle in spawned:
                self._terminate(handle)
            raise
        with self._lock:
            for handle in spawned:
                self._handles[handle.replica_id] = handle
                self._generations[handle.replica_id] = handle.generation
        return spawned

    def handles(self) -> list[ReplicaHandle]:
        with self._lock:
            return list(self._handles.values())

    def handle(self, replica_id: str) -> ReplicaHandle:
        with self._lock:
            return self._handles[replica_id]

    def respawn(self, replica_id: str) -> ReplicaHandle:
        """Replace one replica: terminate what's left of it, spawn and wait
        for a fresh one on a new ephemeral port, bump its generation."""
        with self._lock:
            if self._closed:
                raise RuntimeError("replica manager is closed")
            old = self._handles.get(replica_id)
            generation = self._generations.get(replica_id, -1) + 1
        if old is not None:
            self._terminate(old)
        handle = self._spawn(replica_id, generation=generation)
        with self._lock:
            self._handles[replica_id] = handle
            self._generations[replica_id] = generation
        return handle

    def close(self) -> None:
        """Terminate every replica (SIGTERM, then SIGKILL).  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles.values())
            self._handles.clear()
        for handle in handles:
            self._terminate(handle)

    def __enter__(self) -> "ReplicaManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- internals

    def _spawn(self, replica_id: str, *, generation: int) -> ReplicaHandle:
        context = multiprocessing.get_context(self.start_method)
        receiver, sender = context.Pipe(duplex=False)
        process = context.Process(
            target=replica_main,
            args=(self.spec, replica_id, sender),
            name=f"repro-{replica_id}",
        )
        self._emit(
            "replica_spawn",
            replica=replica_id,
            generation=generation,
            start_method=self.start_method,
        )
        process.start()
        sender.close()  # the parent's copy; the child holds the live end
        try:
            message = self._wait_ready(replica_id, process, receiver)
        finally:
            receiver.close()
        kind, value = message
        if kind == "error":
            process.join(TERMINATE_GRACE_S)
            raise ReplicaStartupError(f"{replica_id} failed to start: {value}")
        handle = ReplicaHandle(
            replica_id=replica_id,
            process=process,
            host=self.spec.host,
            port=int(value),
            generation=generation,
        )
        self._emit(
            "replica_ready",
            replica=replica_id,
            port=handle.port,
            pid=handle.pid,
            generation=generation,
        )
        return handle

    def _wait_ready(self, replica_id: str, process, receiver):
        deadline = time.monotonic() + self.ready_timeout
        while True:
            if receiver.poll(0.1):
                try:
                    return receiver.recv()
                except EOFError:
                    process.join(TERMINATE_GRACE_S)
                    raise ReplicaStartupError(
                        f"{replica_id} exited (code {process.exitcode}) "
                        "before reporting ready"
                    ) from None
            if not process.is_alive():
                # One last poll: the ready message may have raced the exit.
                if receiver.poll(0):
                    continue
                raise ReplicaStartupError(
                    f"{replica_id} exited (code {process.exitcode}) "
                    "before reporting ready"
                )
            if time.monotonic() > deadline:
                self._terminate_process(process)
                raise ReplicaStartupError(
                    f"{replica_id} did not report ready within "
                    f"{self.ready_timeout:.0f}s"
                )

    def _terminate(self, handle: ReplicaHandle) -> None:
        exitcode = self._terminate_process(handle.process)
        self._emit(
            "replica_exit",
            replica=handle.replica_id,
            pid=handle.pid,
            generation=handle.generation,
            exitcode=exitcode,
        )

    @staticmethod
    def _terminate_process(process) -> int | None:
        if process.is_alive():
            process.terminate()  # SIGTERM → graceful drain in replica_main
            process.join(TERMINATE_GRACE_S)
            if process.is_alive():
                process.kill()
                process.join(TERMINATE_GRACE_S)
        return process.exitcode

    def _emit(self, kind: str, *, replica: str, **fields) -> None:
        if self.observer is None:
            return
        try:
            self.observer.replica_event(kind, replica=replica, **fields)
        except Exception:
            pass
