"""The cluster front end: one ``/v1/*`` endpoint over N replicas.

:class:`ClusterRouter` is an :class:`~repro.runtime.http.AsyncJSONHTTPServer`
that proxies the gateway API onto the replica set:

* **Kernel-affinity routing** — the target replica is
  ``ring.lookup(kernel)`` on a :class:`~repro.cluster.hashring
  .ConsistentHashRing`, so all traffic for a kernel hits the replica whose
  featurisation caches and warm workers already know it.  ``estimate_many``
  splits into per-kernel sub-batches fanned out concurrently and re-merged
  in request order — safe under the determinism contract because per-design
  predictions are batch-composition-invariant (the cached == fresh property
  the service's own suites pin down), so the split is invisible bitwise.
* **Failover** — a connection-level failure walks the ring's preference
  order onto the next replica (``retry-on-next``); repeated failures eject
  the replica from the ring and a replacement is respawned through the
  :class:`~repro.cluster.manager.ReplicaManager`, then re-admitted once its
  ``/healthz`` answers.  Responses relay the replica's bytes verbatim.
* **Admission control** — reuses the gateway's backpressure types: a
  cluster-wide in-flight-designs cap (429 via
  :class:`~repro.runtime.gateway.GatewayBackpressureError`) plus per-replica
  caps that spill a too-busy owner's traffic to the next replica before
  rejecting.
* **Health** — a background task polls every replica's ``/healthz`` (which
  carries the supervised pools' state and worker heartbeats).  The router's
  own ``/healthz`` is *degraded-not-dead* while any replica is ejected,
  degraded or respawning, and only 503 with zero serveable replicas.

Router-only routes: ``GET /v1/cluster`` (replica table, ring + ownership
shares, routing policy, counters) and ``GET /v1/events`` (the replica
lifecycle timeline).  ``/metrics`` serves router counters as JSON or
Prometheus exposition.  Per-request traces live on each replica's own
``/v1/traces``; the router does not proxy them.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field

from repro.cluster.hashring import ConsistentHashRing
from repro.cluster.manager import ReplicaHandle, ReplicaManager
from repro.jobs.job import kernel_of_job_id
from repro.obs import ClusterObservability
from repro.obs.logs import log_event
from repro.obs.metrics import flatten_numeric
from repro.runtime.gateway import GatewayBackpressureError, GatewayClosedError
from repro.runtime.http import (
    MAX_LONG_POLL_SECONDS,
    PROMETHEUS_CONTENT_TYPE,
    STREAM_POLL_SECONDS,
    AsyncJSONHTTPServer,
    HTTPConnectionPool,
    HTTPError,
    RawResponse,
    StreamingResponse,
    _require,
)
from repro.runtime.routes import ROUTER_ROUTES, RouteTable

__all__ = ["ClusterConfig", "ClusterRouter", "RouterStats"]


@dataclass(frozen=True)
class ClusterConfig:
    """Routing, admission and health policy of one router."""

    #: Virtual nodes per replica on the hash ring.
    virtual_nodes: int = 64
    #: Cluster-wide designs in flight before the router sheds load (429).
    max_in_flight: int = 4096
    #: Designs in flight on one replica before its traffic spills to the
    #: next replica in ring order (and 429 once every candidate is full).
    replica_max_in_flight: int = 1024
    #: How many *additional* replicas a failed request tries, in ring order.
    retries: int = 2
    #: Seconds between health sweeps over the replica set.
    health_interval_s: float = 1.0
    #: Per-probe timeout; slower than this counts as a failed probe.
    health_timeout_s: float = 5.0
    #: Consecutive failed probes (or proxy-level connection failures) before
    #: a replica is ejected from the ring and respawned.
    fail_threshold: int = 3
    #: End-to-end timeout of one proxied exchange (explore calls run long).
    request_timeout_s: float = 300.0
    #: Capacity of the replica lifecycle event ring.
    event_ring: int = 512

    def __post_init__(self) -> None:
        if self.virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if self.replica_max_in_flight < 1:
            raise ValueError("replica_max_in_flight must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.health_interval_s <= 0 or self.health_timeout_s <= 0:
            raise ValueError("health intervals must be > 0")
        if self.fail_threshold < 1:
            raise ValueError("fail_threshold must be >= 1")
        if self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be > 0")


@dataclass
class _ReplicaSlot:
    """The router's view of one replica: handle + client pool + counters."""

    handle: ReplicaHandle
    pool: HTTPConnectionPool
    state: str = "ready"  # ready | ejected | respawning
    consecutive_failures: int = 0
    in_flight: int = 0
    requests: int = 0
    designs: int = 0
    errors: int = 0
    ejections: int = 0
    degraded: bool = False
    last_status: str | None = None
    pool_states: dict = field(default_factory=dict)
    fingerprint: str | None = None
    #: Seq of the deployment plan the replica last reported on /healthz
    #: (``None``: no plan installed, or deployments disabled).
    deployment_seq: int | None = None


@dataclass
class RouterStats:
    """Cluster-wide routing counters (design-denominated where meaningful)."""

    requests: int = 0
    designs: int = 0
    retries: int = 0
    spills: int = 0
    rejected: int = 0
    ejections: int = 0
    respawns: int = 0

    def as_dict(self) -> dict:
        return dict(vars(self))


class ClusterRouter(AsyncJSONHTTPServer):
    """Kernel-affinity HTTP router over a :class:`ReplicaManager`'s replicas.

    Single-event-loop by construction: ring membership and slot counters are
    only touched from the loop, so no locks.  Blocking manager verbs
    (respawn, close) run in the default executor.
    """

    def __init__(
        self,
        manager: ReplicaManager,
        *,
        config: ClusterConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        obs: ClusterObservability | None = None,
    ) -> None:
        self.config = config or ClusterConfig()
        super().__init__(host=host, port=port)
        self.manager = manager
        self.obs = obs or ClusterObservability(event_ring=self.config.event_ring)
        self.stats = RouterStats()
        self._replicas: dict[str, _ReplicaSlot] = {}
        self._ring = ConsistentHashRing(virtual_nodes=self.config.virtual_nodes)
        self._in_flight = 0
        self._health_task: asyncio.Task | None = None
        self._respawn_tasks: set[asyncio.Task] = set()
        self._fingerprint_warned = False

    @property
    def ring(self) -> ConsistentHashRing:
        """The live routing table (read it, don't mutate it)."""
        return self._ring

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> tuple[str, int]:
        """Boot the replica set (if the manager hasn't) and start serving."""
        if self.manager.observer is None:
            # One timeline: the manager's spawn/ready/exit events land in the
            # same ring as the router's eject/respawn transitions.
            self.manager.observer = self.obs
        if not self.manager.handles():
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.manager.start)
        for handle in self.manager.handles():
            self._install(handle)
        address = await super().start()
        self._health_task = asyncio.create_task(self._health_loop())
        return address

    async def aclose(self, *, close_manager: bool = False) -> None:
        tasks = [task for task in (self._health_task, *self._respawn_tasks) if task]
        self._health_task = None
        self._respawn_tasks.clear()
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        await super().aclose()
        for slot in self._replicas.values():
            await slot.pool.aclose()
        if close_manager:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.manager.close)

    def _install(self, handle: ReplicaHandle) -> _ReplicaSlot:
        slot = _ReplicaSlot(
            handle=handle,
            pool=HTTPConnectionPool(
                handle.host,
                handle.port,
                request_timeout=self.config.request_timeout_s,
            ),
        )
        self._replicas[handle.replica_id] = slot
        self._ring.add(handle.replica_id)
        self.obs.replica_up.labels(replica=handle.replica_id).set(1)
        return slot

    # --------------------------------------------------------------- dispatch

    #: The route table this server dispatches over and serves on /v1/routes.
    routes_table: RouteTable = ROUTER_ROUTES

    async def _dispatch(
        self,
        method: str,
        path: str,
        query: dict,
        headers: dict,
        body: bytes,
        request_id: str,
    ) -> tuple[int, dict | RawResponse | StreamingResponse]:
        route, params = self.routes_table.match(method, path)
        handler = getattr(self, f"_{route.name}")
        try:
            if route.method in ("POST", "PUT"):
                payload = await handler(body, request_id, params)
            else:
                payload = await handler(query, headers, params)
        except HTTPError:
            raise
        except GatewayBackpressureError as error:
            raise HTTPError(429, "backpressure", str(error)) from error
        except GatewayClosedError as error:
            raise HTTPError(503, "closed", str(error)) from error
        status, response = payload
        if route.deprecated:
            response = self._deprecate(response, route.successor)
        return status, response

    def _account(self, method, path, status, started, request_id) -> None:
        if method is None:
            return
        route = self.routes_table.metrics_label(path)
        elapsed = time.perf_counter() - started
        try:
            self.obs.requests.labels(route=route, status=str(status)).inc()
            self.obs.request_seconds.labels(route=route).observe(elapsed)
            log_event(
                self.obs.logger,
                "cluster.request",
                method=method,
                path=path,
                status=status,
                latency_ms=round(elapsed * 1e3, 3),
                request_id=request_id,
            )
        except Exception:  # noqa: BLE001 - accounting must never fail a request
            pass

    # ---------------------------------------------------------------- proxying

    @staticmethod
    def _parse_body(body: bytes) -> dict:
        try:
            parsed = json.loads(body.decode() or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HTTPError(400, "bad_request", f"invalid JSON body: {error}") from error
        if not isinstance(parsed, dict):
            raise HTTPError(400, "bad_request", "body must be a JSON object")
        return parsed

    def _admit(self, cost: int) -> None:
        if self._closing:
            raise GatewayClosedError("cluster router is closed")
        if cost > self.config.max_in_flight:
            raise HTTPError(
                400,
                "invalid_request",
                f"batch of {cost} designs exceeds max_in_flight="
                f"{self.config.max_in_flight}; split the batch",
            )
        if self._in_flight + cost > self.config.max_in_flight:
            self.stats.rejected += cost
            raise GatewayBackpressureError(
                self._in_flight, self.config.max_in_flight, cost
            )
        self._in_flight += cost

    def _release(self, cost: int) -> None:
        self._in_flight -= cost

    def _candidates(self, key: str) -> list[_ReplicaSlot]:
        """Serveable replicas in the key's ring-preference (failover) order."""
        return [
            self._replicas[replica_id]
            for replica_id in self._ring.preference(key)
            if self._replicas[replica_id].state == "ready"
        ]

    async def _forward(
        self,
        key: str,
        path: str,
        payload: bytes,
        *,
        cost: int,
        request_id: str,
        method: str = "POST",
        walk_on_missing_job: bool = False,
    ) -> tuple[int, bytes]:
        """Send one exchange to ``key``'s owner, failing over in ring order.

        Returns the replica's ``(status, body_bytes)`` verbatim — replica
        errors (400 for a bad design point, 429 under its own backpressure)
        relay as-is; only *connection-level* failures trigger failover.
        Raises 503 when every candidate is gone and
        :class:`GatewayBackpressureError` when every candidate is full.

        ``walk_on_missing_job`` extends the walk to ``404 job_not_found``
        answers: a job submitted before a ring change may live on a replica
        that is no longer the key's owner, so job reads try the ring's
        preference order before relaying the 404.
        """
        candidates = self._candidates(key)
        if not candidates:
            raise HTTPError(503, "no_replicas", "no serveable replicas in the ring")
        attempts = candidates[: self.config.retries + 1]
        if walk_on_missing_job:
            # A misplaced job can be on *any* replica, not just the owner's
            # backup set; walk the whole preference order.
            attempts = candidates
        headers = {"X-Request-ID": request_id}
        last_error: Exception | None = None
        missing_job: tuple[int, bytes] | None = None
        tried = 0
        for slot in attempts:
            if slot.in_flight + cost > self.config.replica_max_in_flight:
                # Owner (or backup) is saturated: spill to the next replica
                # rather than queueing behind it — affinity is a performance
                # preference, correctness is identical on every replica.
                self.stats.spills += 1
                continue
            if tried:
                self.stats.retries += 1
                self.obs.retries.labels(reason="connection").inc()
            tried += 1
            slot.in_flight += cost
            try:
                status, _, data = await slot.pool.request(
                    method, path, payload, headers
                )
            except (ConnectionError, asyncio.TimeoutError, OSError) as error:
                last_error = error
                slot.errors += 1
                self._note_failure(slot, reason=f"{type(error).__name__}: {error}")
                continue
            finally:
                slot.in_flight -= cost
            slot.requests += 1
            slot.consecutive_failures = 0
            if walk_on_missing_job and status == 404 and self._is_missing_job(data):
                missing_job = (status, data)
                continue
            slot.designs += cost
            self.stats.designs += cost
            self.obs.replica_designs.labels(replica=slot.handle.replica_id).inc(cost)
            return status, data
        if missing_job is not None:
            # Every reachable replica answered job_not_found: relay it.
            return missing_job
        if last_error is not None:
            raise HTTPError(
                503,
                "no_healthy_replica",
                f"all {tried} candidate replicas failed for {path} "
                f"(last: {last_error})",
            )
        # Nothing failed — every candidate was over its in-flight cap.
        busiest = attempts[0]
        raise GatewayBackpressureError(
            busiest.in_flight, self.config.replica_max_in_flight, cost
        )

    @staticmethod
    def _is_missing_job(data: bytes) -> bool:
        try:
            detail = json.loads(data.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError):
            return False
        return (
            isinstance(detail, dict)
            and (detail.get("error") or {}).get("type") == "job_not_found"
        )

    # ---------------------------------------------------------------- handlers

    async def _estimate(
        self, body: bytes, request_id: str, params: dict
    ) -> tuple[int, RawResponse]:
        parsed = self._parse_body(body)
        kernel = _require(parsed, "kernel", str, "request")
        self.stats.requests += 1
        self._admit(1)
        try:
            status, data = await self._forward(
                kernel, "/v1/estimate", body, cost=1, request_id=request_id
            )
        finally:
            self._release(1)
        return status, RawResponse("application/json", data)

    async def _estimate_many(
        self, body: bytes, request_id: str, params: dict
    ) -> tuple[int, dict | RawResponse]:
        parsed = self._parse_body(body)
        raw = _require(parsed, "requests", list, "body")
        self.stats.requests += 1
        if not raw:
            return 200, {"responses": []}
        # Group by kernel, preserving request order inside each group; each
        # group rides to its kernel's owner as one sub-batch, concurrently.
        groups: dict[str, list[int]] = {}
        for index, item in enumerate(raw):
            kernel = _require(item, "kernel", str, "request")
            groups.setdefault(kernel, []).append(index)
        cost = len(raw)
        self._admit(cost)
        try:
            outcomes = await asyncio.gather(
                *(
                    self._forward(
                        kernel,
                        "/v1/estimate_many",
                        json.dumps(
                            {"requests": [raw[i] for i in indices]}, allow_nan=False
                        ).encode(),
                        cost=len(indices),
                        request_id=request_id,
                    )
                    for kernel, indices in groups.items()
                ),
                return_exceptions=True,
            )
        finally:
            self._release(cost)
        responses: list[dict | None] = [None] * len(raw)
        for (kernel, indices), outcome in zip(groups.items(), outcomes):
            if isinstance(outcome, BaseException):
                # Whole-batch failure semantics, like the direct call: the
                # first failing sub-batch (in first-kernel-appearance order)
                # fails the request.
                raise outcome
            status, data = outcome
            if status != 200:
                # Relay the replica's own error verbatim (bad design point,
                # replica-level backpressure, ...).
                return status, RawResponse("application/json", data)
            sub = json.loads(data.decode())["responses"]
            for position, index in enumerate(indices):
                responses[index] = sub[position]
        return 200, {"responses": responses}

    async def _explore(
        self, body: bytes, request_id: str, params: dict
    ) -> tuple[int, RawResponse]:
        parsed = self._parse_body(body)
        kernel = _require(parsed, "kernel", str, "body")
        self.stats.requests += 1
        self._admit(1)
        try:
            status, data = await self._forward(
                kernel, "/v1/explore", body, cost=1, request_id=request_id
            )
        finally:
            self._release(1)
        return status, RawResponse("application/json", data)

    # ------------------------------------------------------------------- jobs
    #
    # Job routes hash on the kernel — submissions carry it in the body, every
    # other verb recovers it from the job id itself (ids embed the kernel) —
    # so a job's whole lifecycle lands on the replica whose warm caches ran
    # the exploration, with no cluster-wide job table.  Polls/cancels are
    # cost-0 exchanges: they must keep answering while the design-denominated
    # admission is saturated.

    async def _submit_explore_job(
        self, body: bytes, request_id: str, params: dict
    ) -> tuple[int, RawResponse]:
        parsed = self._parse_body(body)
        kernel = _require(parsed, "kernel", str, "body")
        self.stats.requests += 1
        status, data = await self._forward(
            kernel, "/v1/jobs/explore", body, cost=0, request_id=request_id
        )
        return status, RawResponse("application/json", data)

    async def _get_job(
        self, query: dict, headers: dict, params: dict
    ) -> tuple[int, RawResponse]:
        job_id = params["job_id"]
        self.stats.requests += 1
        status, data = await self._forward(
            kernel_of_job_id(job_id),
            f"/v1/jobs/{job_id}",
            b"",
            cost=0,
            request_id=headers.get("x-request-id", ""),
            method="GET",
            walk_on_missing_job=True,
        )
        return status, RawResponse("application/json", data)

    async def _cancel_job(
        self, body: bytes, request_id: str, params: dict
    ) -> tuple[int, RawResponse]:
        job_id = params["job_id"]
        self.stats.requests += 1
        status, data = await self._forward(
            kernel_of_job_id(job_id),
            f"/v1/jobs/{job_id}/cancel",
            b"{}",
            cost=0,
            request_id=request_id,
            walk_on_missing_job=True,
        )
        return status, RawResponse("application/json", data)

    async def _job_updates(
        self, query: dict, headers: dict, params: dict
    ) -> tuple[int, dict | RawResponse | StreamingResponse]:
        job_id = params["job_id"]
        self.stats.requests += 1
        since = self._int_param(query, "since", default=0, minimum=0)
        stream = query.get("stream", ["0"])[0] not in ("", "0", "false")
        request_id = headers.get("x-request-id", "")
        if stream:
            # Prove the job exists (ordinary 404 envelope) before committing
            # to a 200 chunked head, then re-emit the owner's updates as this
            # server's own stream, fed by proxied long-polls — the stream
            # survives replica failover because each leg re-resolves the
            # owner through the ring.
            status, data = await self._forward(
                kernel_of_job_id(job_id),
                f"/v1/jobs/{job_id}",
                b"",
                cost=0,
                request_id=request_id,
                method="GET",
                walk_on_missing_job=True,
            )
            if status != 200:
                return status, RawResponse("application/json", data)
            return 200, StreamingResponse(
                "application/x-ndjson",
                self._stream_job_updates(job_id, since, request_id),
            )
        wait_values = query.get("wait")
        suffix = ""
        if wait_values:
            try:
                wait = min(float(wait_values[0]), MAX_LONG_POLL_SECONDS)
            except ValueError:
                raise HTTPError(400, "bad_request", "wait must be a number") from None
            suffix = f"&wait={wait:g}"
        status, data = await self._forward(
            kernel_of_job_id(job_id),
            f"/v1/jobs/{job_id}/updates?since={since}{suffix}",
            b"",
            cost=0,
            request_id=request_id,
            method="GET",
            walk_on_missing_job=True,
        )
        return status, RawResponse("application/json", data)

    async def _stream_job_updates(self, job_id: str, since: int, request_id: str):
        """One JSON line per update, long-polling the owning replica."""
        key = kernel_of_job_id(job_id)
        while not self._closing:
            try:
                status, data = await self._forward(
                    key,
                    f"/v1/jobs/{job_id}/updates?since={since}"
                    f"&wait={STREAM_POLL_SECONDS:g}",
                    b"",
                    cost=0,
                    request_id=request_id,
                    method="GET",
                    walk_on_missing_job=True,
                )
            except (HTTPError, GatewayBackpressureError):
                return  # mid-stream: truncation is the only honest signal
            if status != 200:
                return
            payload = json.loads(data.decode() or "{}")
            done = False
            for update in payload.get("updates", ()):
                yield json.dumps(update, allow_nan=False).encode() + b"\n"
                done = done or update.get("event") == "done"
            since = payload.get("next_since", since)
            if done:
                return
            if not payload.get("updates") and payload.get("state") not in (
                "queued",
                "running",
            ):
                return

    async def _list_jobs(
        self, query: dict, headers: dict, params: dict
    ) -> tuple[int, dict]:
        """Fan out to every serveable replica and merge the job tables."""
        self.stats.requests += 1
        client_values = query.get("client")
        suffix = f"?client={client_values[0]}" if client_values else ""
        slots = [s for s in self._replicas.values() if s.state == "ready"]
        if not slots:
            raise HTTPError(503, "no_replicas", "no serveable replicas in the ring")
        outcomes = await asyncio.gather(
            *(slot.pool.request("GET", f"/v1/jobs{suffix}") for slot in slots),
            return_exceptions=True,
        )
        jobs: list[dict] = []
        reachable = 0
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                continue
            status, _, data = outcome
            if status != 200:
                continue
            reachable += 1
            jobs.extend(json.loads(data.decode() or "{}").get("jobs", ()))
        if not reachable:
            raise HTTPError(503, "no_replicas", "no replica answered /v1/jobs")
        jobs.sort(key=lambda job: (job.get("created_s", 0), job.get("job_id", "")))
        return 200, {"jobs": jobs}

    async def _routes(
        self, query: dict, headers: dict, params: dict
    ) -> tuple[int, dict]:
        return 200, {"version": "v1", "routes": self.routes_table.describe()}

    async def _proxy_any(
        self, method: str, path: str, body: bytes = b""
    ) -> tuple[int, RawResponse]:
        """Proxy one exchange to any serveable replica, walking the set on
        connection failure.  For state every replica shares through the
        registry directory (the model index, the deployment plan) any ready
        replica's answer is the cluster's answer — and a mutation (PUT a
        plan) landed through one replica is observed by all of them on their
        next per-batch snapshot."""
        for slot in self._replicas.values():
            if slot.state != "ready":
                continue
            try:
                status, _, data = await slot.pool.request(method, path, body)
            except (ConnectionError, asyncio.TimeoutError, OSError):
                continue
            return status, RawResponse("application/json", data)
        raise HTTPError(503, "no_replicas", "no serveable replicas in the ring")

    async def _models(
        self, query: dict, headers: dict, params: dict
    ) -> tuple[int, RawResponse]:
        """Proxy to any serveable replica (they share one registry)."""
        self.stats.requests += 1
        return await self._proxy_any("GET", "/v1/models")

    # ------------------------------------------------------------ deployments
    #
    # Deployment verbs proxy to *any* ready replica: the plan store lives in
    # the shared registry directory, so one replica's answer (and one
    # replica's publish) is authoritative for the whole set.

    async def _get_deployment(
        self, query: dict, headers: dict, params: dict
    ) -> tuple[int, RawResponse]:
        self.stats.requests += 1
        return await self._proxy_any("GET", "/v1/deployments")

    async def _put_deployment(
        self, body: bytes, request_id: str, params: dict
    ) -> tuple[int, RawResponse]:
        self._parse_body(body)  # reject non-object bodies at the router edge
        self.stats.requests += 1
        return await self._proxy_any("PUT", "/v1/deployments", body)

    async def _promote_deployment(
        self, body: bytes, request_id: str, params: dict
    ) -> tuple[int, RawResponse]:
        self._parse_body(body or b"{}")
        self.stats.requests += 1
        return await self._proxy_any(
            "POST", "/v1/deployments/promote", body or b"{}"
        )

    async def _rollback_deployment(
        self, body: bytes, request_id: str, params: dict
    ) -> tuple[int, RawResponse]:
        self._parse_body(body or b"{}")
        self.stats.requests += 1
        return await self._proxy_any(
            "POST", "/v1/deployments/rollback", body or b"{}"
        )

    async def _healthz(self, query: dict, headers: dict, params: dict) -> tuple[int, dict]:
        """Degraded-not-dead: 200 while *any* replica can serve.

        A SIGKILLed replica mid-respawn turns the cluster ``degraded`` —
        requests still succeed via failover — and only a cluster with zero
        serveable replicas (or a closed router) answers 503.
        """
        replicas = {
            replica_id: {
                "state": slot.state,
                "status": slot.last_status,
                "port": slot.handle.port,
                "pid": slot.handle.pid,
                "generation": slot.handle.generation,
                "consecutive_failures": slot.consecutive_failures,
                "model_fingerprint": slot.fingerprint,
                "deployment_seq": slot.deployment_seq,
            }
            for replica_id, slot in sorted(self._replicas.items())
        }
        ready = [s for s in self._replicas.values() if s.state == "ready"]
        if self._closing:
            return 503, {"status": "closed", "replicas": replicas}
        if not ready:
            return 503, {"status": "unavailable", "replicas": replicas}
        degraded = len(ready) < len(self._replicas) or any(
            slot.degraded or slot.consecutive_failures for slot in ready
        )
        return 200, {
            "status": "degraded" if degraded else "ok",
            "replicas": replicas,
            "ring": {"nodes": self._ring.nodes, "size": len(self._ring)},
        }

    async def _cluster(self, query: dict, headers: dict, params: dict) -> tuple[int, dict]:
        """The cluster control-plane view: replicas, ring, policy, counters."""
        return 200, {
            "replicas": {
                replica_id: {
                    "state": slot.state,
                    "port": slot.handle.port,
                    "pid": slot.handle.pid,
                    "generation": slot.handle.generation,
                    "requests": slot.requests,
                    "designs": slot.designs,
                    "errors": slot.errors,
                    "ejections": slot.ejections,
                    "in_flight": slot.in_flight,
                    "status": slot.last_status,
                    "pools": slot.pool_states,
                    "model_fingerprint": slot.fingerprint,
                    "deployment_seq": slot.deployment_seq,
                    "connections": slot.pool.stats(),
                }
                for replica_id, slot in sorted(self._replicas.items())
            },
            "ring": self._ring.snapshot(),
            "policy": {
                "affinity": "kernel",
                "virtual_nodes": self.config.virtual_nodes,
                "retries": self.config.retries,
                "max_in_flight": self.config.max_in_flight,
                "replica_max_in_flight": self.config.replica_max_in_flight,
                "fail_threshold": self.config.fail_threshold,
                "health_interval_s": self.config.health_interval_s,
            },
            "stats": self.stats.as_dict(),
        }

    async def _events(self, query: dict, headers: dict, params: dict) -> tuple[int, dict]:
        """The replica lifecycle timeline (oldest first)."""
        limit = self._int_param(query, "limit", default=100)
        kind_values = query.get("kind")
        kind = kind_values[0] if kind_values else None
        return 200, {
            "events": self.obs.events.snapshot(limit=limit, kind=kind),
            "stats": self.obs.events.stats(),
        }

    async def _metrics(
        self, query: dict, headers: dict, params: dict
    ) -> tuple[int, dict | RawResponse]:
        cluster = await self._cluster(query, headers, params)
        snapshot = {"cluster": cluster[1], "observability": self.obs.snapshot()}
        if "text/plain" not in headers.get("accept", ""):
            return 200, snapshot
        projected: dict = {}
        flatten_numeric("repro_cluster_stats", self.stats.as_dict(), projected)
        text = self.obs.metrics.render_prometheus(extra_gauges=projected)
        return 200, RawResponse(PROMETHEUS_CONTENT_TYPE, text.encode())

    # ----------------------------------------------------------------- health

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.health_interval_s)
            await asyncio.gather(
                *(self._probe(slot) for slot in list(self._replicas.values()))
            )

    async def _probe(self, slot: _ReplicaSlot) -> None:
        if slot.state != "ready":
            return
        try:
            status, payload = await asyncio.wait_for(
                slot.pool.request_json("GET", "/healthz"),
                self.config.health_timeout_s,
            )
        except (ConnectionError, asyncio.TimeoutError, OSError) as error:
            self._note_failure(slot, reason=f"{type(error).__name__}: {error}")
            return
        if status != 200:
            self._note_failure(slot, reason=f"healthz answered {status}")
            return
        slot.consecutive_failures = 0
        slot.last_status = payload.get("status")
        slot.degraded = slot.last_status == "degraded"
        slot.pool_states = {
            name: pool.get("state")
            for name, pool in (payload.get("pools") or {}).items()
        }
        slot.deployment_seq = payload.get("deployment_seq")
        fingerprint = payload.get("model_fingerprint")
        if fingerprint is not None:
            slot.fingerprint = fingerprint
            self._check_fingerprints(slot)

    def _check_fingerprints(self, slot: _ReplicaSlot) -> None:
        """A mixed-version replica set would serve divergent predictions —
        loudly record it (once) instead of letting the equivalence contract
        silently break.

        With a deployment plan live the *plan seq*, not the default-model
        fingerprint, is the consistency axis: replicas converge on the
        current plan on their next per-batch snapshot, and mixed default
        fingerprints behind identical plans are legitimate mid-rollout.  So
        the mismatch event only fires when no replica reports a plan.
        """
        if self._fingerprint_warned:
            return
        if any(s.deployment_seq is not None for s in self._replicas.values()):
            return
        others = {
            s.fingerprint
            for s in self._replicas.values()
            if s is not slot and s.fingerprint is not None
        }
        if others and others != {slot.fingerprint}:
            self._fingerprint_warned = True
            self.obs.replica_event(
                "fingerprint_mismatch",
                replica=slot.handle.replica_id,
                fingerprint=slot.fingerprint,
                others=sorted(others),
            )

    def _note_failure(self, slot: _ReplicaSlot, *, reason: str) -> None:
        """Shared suspicion counter for probe and proxy-level failures, so a
        dead replica under live traffic ejects faster than the poll alone."""
        if slot.state != "ready":
            return
        slot.consecutive_failures += 1
        if slot.consecutive_failures >= self.config.fail_threshold:
            self._eject(slot, reason=reason)

    def _eject(self, slot: _ReplicaSlot, *, reason: str) -> None:
        replica_id = slot.handle.replica_id
        slot.state = "ejected"
        self._ring.remove(replica_id)
        slot.ejections += 1
        self.stats.ejections += 1
        self.obs.replica_up.labels(replica=replica_id).set(0)
        self.obs.replica_event(
            "replica_eject",
            replica=replica_id,
            reason=reason,
            consecutive_failures=slot.consecutive_failures,
        )
        task = asyncio.get_running_loop().create_task(self._respawn(slot))
        self._respawn_tasks.add(task)
        task.add_done_callback(self._respawn_tasks.discard)

    async def _respawn(self, slot: _ReplicaSlot) -> None:
        """Replace an ejected replica; re-admit it once its healthz answers.

        Retries until the router closes — a replica that cannot come back
        stays out of the ring (the cluster runs degraded on the survivors)
        rather than flapping in and out.
        """
        slot.state = "respawning"
        replica_id = slot.handle.replica_id
        loop = asyncio.get_running_loop()
        while not self._closing:
            try:
                handle = await loop.run_in_executor(
                    None, self.manager.respawn, replica_id
                )
            except Exception as error:  # noqa: BLE001 - supervision must survive
                self.obs.replica_event(
                    "replica_respawn_failed",
                    replica=replica_id,
                    error=f"{type(error).__name__}: {error}",
                )
                await asyncio.sleep(self.config.health_interval_s)
                continue
            old_pool = slot.pool
            slot.handle = handle
            slot.pool = HTTPConnectionPool(
                handle.host,
                handle.port,
                request_timeout=self.config.request_timeout_s,
            )
            await old_pool.aclose()
            if await self._await_healthy(slot):
                slot.state = "ready"
                slot.consecutive_failures = 0
                self._ring.add(replica_id)
                self.stats.respawns += 1
                self.obs.replica_up.labels(replica=replica_id).set(1)
                self.obs.replica_event(
                    "replica_respawn",
                    replica=replica_id,
                    port=handle.port,
                    pid=handle.pid,
                    generation=handle.generation,
                )
                return

    async def _await_healthy(self, slot: _ReplicaSlot) -> bool:
        """Probe the fresh replica until its healthz answers (it reported
        ready over the pipe, so this is normally the first attempt)."""
        deadline = time.monotonic() + self.config.health_timeout_s * 4
        while time.monotonic() < deadline and not self._closing:
            try:
                status, payload = await asyncio.wait_for(
                    slot.pool.request_json("GET", "/healthz"),
                    self.config.health_timeout_s,
                )
            except (ConnectionError, asyncio.TimeoutError, OSError):
                await asyncio.sleep(0.1)
                continue
            if status == 200:
                slot.last_status = payload.get("status")
                slot.fingerprint = payload.get("model_fingerprint")
                return True
            await asyncio.sleep(0.1)
        return False
