"""One replica process: a full service + gateway + HTTP server on its own port.

A replica is the whole single-process serving stack from PRs 1–6 — model
loaded from the registry, supervised pools, async gateway, HTTP front end,
observability — just booted as a child process on an ephemeral port.
:class:`ReplicaSpec` is the picklable recipe (it must survive the ``spawn``
start method, so it carries paths and configs, never live objects);
:func:`replica_main` is the child entrypoint the
:class:`~repro.cluster.manager.ReplicaManager` targets.

Startup handshake: the child builds its service, binds port 0 and sends
``("ready", port)`` over the pipe — or ``("error", message)`` if construction
failed, so the parent can raise a real error instead of timing out.  After
the handshake the pipe is closed and the only channels left are HTTP (the
routed traffic, ``/healthz`` probes) and signals: SIGTERM/SIGINT trigger a
graceful drain — in-flight requests get their responses, the pools and the
persistent-cache owner lock are released — exactly what the manager sends on
``close()``/``respawn()``.

Determinism note: registry save/load is bit-exact, so every replica built
from the same ``(registry, name, version)`` serves bitwise-identical
predictions — the property the router's equivalence suite pins down.

Replicas may share one ``runtime.persistent_cache_dir``: the cache's owner
lock (PR 5) lets the first replica write while the others degrade to
read-only openers of the shared disk tier.
"""

from __future__ import annotations

import asyncio
import signal
from dataclasses import dataclass
from pathlib import Path

from repro.flow.dataset_gen import DatasetConfig, DatasetGenerator
from repro.runtime.config import RuntimeConfig
from repro.runtime.gateway import AsyncPowerGateway
from repro.runtime.http import GatewayHTTPServer
from repro.serve.registry import ModelRegistry

__all__ = ["ReplicaSpec", "replica_main"]


@dataclass(frozen=True)
class ReplicaSpec:
    """Picklable recipe for one replica process.

    ``registry_dir`` + ``model_name`` (+ optional pinned ``model_version``)
    name the artifact every replica loads; ``dataset_config`` must match the
    config the training dataset was generated with (it parameterises the
    featuriser); ``runtime`` configures the pools/caches of each replica —
    including ``persistent_cache_dir``, which replicas may share thanks to
    the cache's one-writer/many-reader owner lock.
    """

    registry_dir: str | Path
    model_name: str
    model_version: int | None = None
    dataset_config: DatasetConfig | None = None
    runtime: RuntimeConfig | None = None
    batch_size: int = 64
    host: str = "127.0.0.1"

    def build_service(self):
        """Load the model and build the full service; returns
        ``(service, registry)``.  Runs inside the replica process (but is
        equally usable in-process, e.g. by the equivalence tests' direct
        baseline)."""
        from repro.serve.service import PowerEstimationService

        registry = ModelRegistry(self.registry_dir)
        generator = DatasetGenerator(self.dataset_config or DatasetConfig())
        service = PowerEstimationService(
            registry=registry,
            model_name=self.model_name,
            model_version=self.model_version,
            generator=generator,
            batch_size=self.batch_size,
            runtime=self.runtime or RuntimeConfig(),
        )
        return service, registry


def replica_main(spec: ReplicaSpec, replica_id: str, conn) -> None:
    """Child-process entrypoint: build, handshake, serve until signalled.

    Module-level (not a closure) so it survives the ``spawn`` start method.
    ``conn`` is the write end of the readiness pipe.
    """
    try:
        service, registry = spec.build_service()
    except BaseException as error:  # noqa: BLE001 - anything fatal must
        # reach the parent as ("error", ...) instead of a silent exit.
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        finally:
            conn.close()
        raise SystemExit(1) from error

    async def serve() -> None:
        # Mount the jobs tier when the runtime resolves a durable directory
        # (jobs_dir, or a jobs/ subtree of the persistent cache dir): the
        # manager resumes any interrupted jobs found there at construction,
        # which is what makes SIGKILL + respawn continue mid-exploration.
        from repro.jobs import JobManager, jobs_dir_for

        jobs_dir = jobs_dir_for(spec.runtime or RuntimeConfig())
        jobs = JobManager(service, store=jobs_dir) if jobs_dir else JobManager(service)
        gateway = AsyncPowerGateway(service, jobs=jobs)
        server = GatewayHTTPServer(
            gateway, host=spec.host, port=0, registry=registry
        )
        await server.start()
        conn.send(("ready", server.port))
        conn.close()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        # Graceful drain: stop accepting, answer what's in flight, then tear
        # down pools and release the persistent-cache owner lock.
        await server.aclose(close_gateway=True)

    asyncio.run(serve())
