"""Consistent-hash ring for kernel-affinity routing.

The router maps every request's kernel name onto one replica through this
ring so all traffic for a kernel lands on the same replica — its
featurisation caches and warm worker state stay hot — while the key space
still spreads across the replica set.  Consistent hashing (vs ``hash(key) %
N``) is what makes membership churn cheap: ejecting or re-adding one replica
remaps only the keys that replica owned, so a failover never cold-starts the
*other* replicas' caches.

Hashes come from ``blake2b`` (stable across processes and Python versions —
builtin ``hash()`` is salted per process, which would give every replica a
different ring).  Each node is planted at ``virtual_nodes`` points so the
per-node share of the key space concentrates near ``1/len(nodes)`` instead
of varying wildly with a handful of placements.

Everything is synchronous and single-threaded by design: the router mutates
the ring only from its event loop.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["ConsistentHashRing", "stable_hash"]

#: Width of the ring's key space (64-bit hashes).
_RING_SPAN = 2**64


def stable_hash(key: str) -> int:
    """A 64-bit hash of ``key`` that is stable across processes and runs."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Deterministic consistent-hash ring with virtual nodes.

    ``lookup(key)`` returns the owning node; ``preference(key)`` returns
    *every* node in ring order from the key's position — the router's
    failover order, so retries walk replicas in a stable, key-dependent
    sequence instead of hammering one designated backup.
    """

    def __init__(self, *, virtual_nodes: int = 64) -> None:
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.virtual_nodes = virtual_nodes
        self._points: list[int] = []  # sorted virtual-node positions
        self._owners: list[str] = []  # owner of self._points[i]
        self._nodes: set[str] = set()

    # ------------------------------------------------------------- membership

    def add(self, node: str) -> None:
        """Plant ``node`` at its virtual points.  Idempotent."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for position in self._positions(node):
            index = bisect.bisect(self._points, position)
            self._points.insert(index, position)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        """Remove ``node`` from the ring.  Idempotent."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    # ---------------------------------------------------------------- routing

    def lookup(self, key: str) -> str | None:
        """The node owning ``key``: the first virtual point at or after its
        hash, wrapping around.  ``None`` on an empty ring."""
        if not self._points:
            return None
        index = bisect.bisect(self._points, stable_hash(key)) % len(self._points)
        return self._owners[index]

    def preference(self, key: str) -> list[str]:
        """All distinct nodes in ring order starting at ``key``'s owner.

        ``preference(key)[0] == lookup(key)``; the tail is the failover
        order.  Stable for a fixed membership, and key-dependent — different
        keys spread their retries across different backups.
        """
        count = len(self._nodes)
        if not count:
            return []
        start = bisect.bisect(self._points, stable_hash(key))
        order: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                order.append(owner)
                if len(order) == count:
                    break
        return order

    # ------------------------------------------------------------ inspection

    def ownership(self) -> dict[str, float]:
        """Fraction of the key space each node owns (sums to 1.0)."""
        if not self._points:
            return {}
        shares = {node: 0 for node in self._nodes}
        previous = self._points[-1] - _RING_SPAN
        for point, owner in zip(self._points, self._owners):
            shares[owner] += point - previous
            previous = point
        return {node: span / _RING_SPAN for node, span in sorted(shares.items())}

    def snapshot(self) -> dict:
        """JSON-safe view for ``/v1/cluster``."""
        return {
            "nodes": self.nodes,
            "virtual_nodes": self.virtual_nodes,
            "points": len(self._points),
            "ownership": self.ownership(),
        }

    def _positions(self, node: str) -> list[int]:
        return [
            stable_hash(f"{node}#{replica_index}")
            for replica_index in range(self.virtual_nodes)
        ]
