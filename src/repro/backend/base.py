"""Array-ops protocol of the compute-backend layer, plus backend selection.

Every kernel on the packed mega-graph forward path — dense matmuls, the
``scatter_add`` over relation edges, gathers, activations, the fused
affine/activation combinations — is expressed against :class:`ArrayBackend`.
The autograd tensor (:mod:`repro.nn.tensor`), the GNN forward
(:mod:`repro.gnn`) and the serving layer (:mod:`repro.serve`) all call
:func:`active_backend` instead of numpy directly, so swapping the backend
swaps the kernels everywhere at once.

Selection is layered (explicit wins over ambient):

* :func:`use_backend` — a thread-local override for one ``with`` block (how
  the service pins the backend its ``RuntimeConfig`` names);
* :func:`set_default_backend` — the process-wide default;
* ``REPRO_BACKEND`` — environment selection of the initial default
  (``numpy`` when unset), resolved once on first use.

Backends are registered by name in a module registry and instantiated as
process-wide singletons, so per-backend counters (forwards, workspace reuse)
aggregate globally and ``runtime_stats()`` can report them per backend name.

Contract: every backend must be *bitwise-identical* to the ``numpy``
reference on the forward path.  The reference implementations on this base
class define the semantics; an override may only change *how* a value is
computed (workspace reuse, fusion, an accelerator) — never which floats come
out.  The equivalence property suite enforces this.

One explicit exception exists: a backend constructed under an accelerator
opt-in (``REPRO_BACKEND_ACCEL``, e.g. the ``f32`` tier of the ``optimized``
backend) may advertise a non-``None`` :attr:`ArrayBackend.tolerance` —
an ``(rtol, atol)`` pair relaxing bitwise identity to ``np.allclose`` against
the reference at exactly those tolerances.  The equivalence suite asserts
``tobytes`` equality when ``tolerance is None`` and the allclose contract
otherwise, so the relaxation is always explicit, never silent.
"""

from __future__ import annotations

import contextlib
import os
import threading
from dataclasses import dataclass, field

import numpy as np

#: Environment variable naming the default backend (``numpy`` / ``optimized``).
BACKEND_ENV_VAR = "REPRO_BACKEND"


# -------------------------------------------------------------------- stats


@dataclass
class BackendStats:
    """Lifetime counters of one backend singleton.

    ``forwards`` counts packed forward passes (one per
    :meth:`ArrayBackend.forward_scope` entry); the op counters count kernel
    invocations *inside* forward scopes — training-path calls run outside any
    scope and are deliberately not counted, so the numbers mean "serving
    work".  Mutated only under an internal lock: scopes tally locally and
    merge once on exit, so the hot path never contends.
    """

    forwards: int = 0
    matmuls: int = 0
    scatter_adds: int = 0
    gathers: int = 0
    fused_linear: int = 0
    fused_add_relu: int = 0
    grouped_matmuls: int = 0
    grouped_scatter_adds: int = 0
    workspace_hits: int = 0
    workspace_misses: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    _COUNTERS = (
        "forwards",
        "matmuls",
        "scatter_adds",
        "gathers",
        "fused_linear",
        "fused_add_relu",
        "grouped_matmuls",
        "grouped_scatter_adds",
        "workspace_hits",
        "workspace_misses",
    )

    def merge(self, tally: dict[str, int]) -> None:
        with self._lock:
            for name, delta in tally.items():
                setattr(self, name, getattr(self, name) + delta)

    def as_dict(self) -> dict:
        with self._lock:
            return {name: getattr(self, name) for name in self._COUNTERS}


class _ForwardScope:
    """Per-forward bookkeeping: an op tally plus the workspace arena.

    ``buffers`` holds every array the backend handed out during the scoped
    forward; pooling backends recycle them at scope exit (the whole arena is
    live for the forward's duration, nothing inside it ever aliases early).
    """

    __slots__ = ("tally", "buffers")

    def __init__(self) -> None:
        self.tally: dict[str, int] = {"forwards": 1}
        self.buffers: list[np.ndarray] = []

    def count(self, name: str, delta: int = 1) -> None:
        self.tally[name] = self.tally.get(name, 0) + delta


# ------------------------------------------------------------------ backend


class ArrayBackend:
    """Reference semantics of every forward-path kernel (numpy expressions).

    The expressions here are *the* definition of bitwise behaviour: they are
    exactly the operations the pre-backend code ran, so the ``numpy`` backend
    (which inherits them unchanged) preserves historical outputs bit for bit,
    and any override is checked against them by the equivalence suite.
    """

    #: Registry name; subclasses must override.
    name: str = "base"
    #: Which optional accelerator the backend bound (``"none"`` / ``"numba"``
    #: / ``"torch"`` / ``"f32"``); informational, surfaced through
    #: ``runtime_stats()``.
    accelerator: str = "none"
    #: Numerical contract of the backend: ``None`` means bitwise-identical to
    #: the reference (the default, and the only permitted value outside an
    #: explicit ``REPRO_BACKEND_ACCEL`` opt-in); an ``(rtol, atol)`` pair
    #: relaxes the contract to ``np.allclose`` at those tolerances, asserted
    #: by the equivalence suite.
    tolerance: tuple[float, float] | None = None

    def __init__(self) -> None:
        self.stats = BackendStats()
        self._tls = threading.local()

    # ------------------------------------------------------------- lifecycle

    def _scope(self) -> _ForwardScope | None:
        return getattr(self._tls, "scope", None)

    @contextlib.contextmanager
    def forward_scope(self):
        """Delimit one packed forward pass (inference only, no autograd).

        Inside the scope the backend may serve allocations from a reusable
        workspace arena; every buffer handed out stays valid until the scope
        exits, and callers must copy anything that outlives the scope (the
        model's ``predict`` / ``predict_prepared`` do).  Scopes nest (an
        ensemble loop inside an outer scope); buffers recycle when the scope
        that allocated them exits.
        """
        previous = self._scope()
        scope = _ForwardScope()
        self._tls.scope = scope
        try:
            yield scope
        finally:
            self._tls.scope = previous
            self._recycle(scope)
            self.stats.merge(scope.tally)

    def _recycle(self, scope: _ForwardScope) -> None:
        """Return a finished scope's buffers to the pool (no-op by default)."""

    def _count(self, name: str, delta: int = 1) -> None:
        scope = self._scope()
        if scope is not None:
            scope.count(name, delta)

    # ----------------------------------------------------------- allocation

    def empty(self, shape, dtype=np.float64) -> np.ndarray:
        """An uninitialised buffer (workspace-pooled inside a forward scope)."""
        return np.empty(shape, dtype=dtype)

    def zeros(self, shape, dtype=np.float64) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)

    # ------------------------------------------------------------- kernels

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self._count("matmuls")
        return a @ b

    def linear(
        self, x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None
    ) -> np.ndarray:
        """Fused affine ``x @ weight + bias`` (one kernel in fast backends)."""
        self._count("matmuls")
        out = x @ weight
        if bias is not None:
            out = out + bias
        return out

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a + b

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a * b

    def relu(self, x: np.ndarray) -> np.ndarray:
        # ``x * (x > 0)`` — not ``np.maximum`` — to stay bitwise-faithful to
        # the autograd tensor's historical mask formulation (it differs on
        # the sign bit of zeros produced from negative inputs).
        return x * (x > 0)

    def add_relu(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Fused ``relu(a + b)`` — the conv's update + aggregation activation."""
        self._count("fused_add_relu")
        out = a + b
        return out * (out > 0)

    def gather_rows(self, values: np.ndarray, index: np.ndarray) -> np.ndarray:
        self._count("gathers")
        return values[index]

    def scatter_add(
        self, values: np.ndarray, index: np.ndarray, num_segments: int
    ) -> np.ndarray:
        """Sum rows of ``values`` into ``num_segments`` buckets given by ``index``.

        Equivalent to ``np.add.at(out, index, values)`` but built on
        ``np.bincount``, which runs the accumulation in a tight C loop instead
        of the buffered ``ufunc.at`` path — an order of magnitude faster on
        the message-aggregation shapes used here.  Both variants add
        contributions in row order, so the results are bitwise identical.
        """
        self._count("scatter_adds")
        index = np.asarray(index, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 1:
            return np.bincount(index, weights=values, minlength=num_segments)
        if values.ndim != 2:  # pragma: no cover - the models only use 1-D / 2-D
            out = np.zeros((num_segments,) + values.shape[1:], dtype=np.float64)
            np.add.at(out, index, values)
            return out
        columns = values.shape[1]
        if columns == 0 or values.shape[0] == 0:
            return np.zeros((num_segments, columns), dtype=np.float64)
        flat_index = (index[:, None] * columns + np.arange(columns)).ravel()
        flat = np.bincount(
            flat_index, weights=values.ravel(), minlength=num_segments * columns
        )
        return flat.reshape(num_segments, columns)

    def grouped_matmul(
        self, values: np.ndarray, weights: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray:
        """Per-relation-block matmul over a relation-sorted row layout.

        ``values`` is ``(E, d_in)`` with rows grouped by relation (the layout
        :meth:`repro.gnn.base.GraphBatch.relation_groups` produces),
        ``weights`` is the batched ``(R, d_in, d_out)`` relation-weight block
        and ``offsets`` is the ``(R + 1,)`` cumulative bucket boundary vector:
        relation ``r`` owns rows ``offsets[r]:offsets[r + 1]``.

        The reference loops relation blocks and *assigns* each block's fresh
        matmul result into the output (never ``out=`` — BLAS results written
        into caller-provided buffers are not bitwise-stable), so every output
        row equals the corresponding per-relation ``block @ weights[r]`` row
        of the historical per-relation loop bit for bit (GEMM results are
        row-independent).  Empty relations contribute nothing, exactly like
        the loop's ``continue``.
        """
        self._count("grouped_matmuls")
        out = np.empty(
            (values.shape[0], weights.shape[2]),
            dtype=np.result_type(values.dtype, weights.dtype),
        )
        for relation in range(weights.shape[0]):
            lo, hi = int(offsets[relation]), int(offsets[relation + 1])
            if lo == hi:
                continue
            out[lo:hi] = values[lo:hi] @ weights[relation]
        return out

    def scatter_add_grouped(
        self,
        values: np.ndarray,
        destinations: np.ndarray,
        offsets: np.ndarray,
        num_segments: int,
    ) -> np.ndarray:
        """Sum relation-grouped rows into segments, accumulating relation blocks
        in relation order.

        Mirrors the historical per-relation aggregation loop exactly: each
        non-empty relation block runs one :meth:`scatter_add` over its own
        slice of ``destinations`` and the per-relation sums chain through
        sequential ``+`` in relation order — the same floating-point
        expression tree, so the result is bitwise-identical to the loop.
        ``destinations`` must be stably sorted within each relation block by
        (destination, original edge id): per-destination contributions then
        arrive in original edge order, which is what keeps each relation's
        ``scatter_add`` bitwise-equal to the unsorted historical one.
        """
        self._count("grouped_scatter_adds")
        aggregated: np.ndarray | None = None
        for relation in range(len(offsets) - 1):
            lo, hi = int(offsets[relation]), int(offsets[relation + 1])
            if lo == hi:
                continue
            summed = self.scatter_add(values[lo:hi], destinations[lo:hi], num_segments)
            aggregated = summed if aggregated is None else aggregated + summed
        if aggregated is None:
            return np.zeros((num_segments,) + values.shape[1:], dtype=values.dtype)
        return aggregated

    def scatter_add_relu(
        self, values: np.ndarray, index: np.ndarray, num_segments: int
    ) -> np.ndarray:
        """Fused ``relu(scatter_add(...))`` for convs whose aggregation feeds
        straight into the activation (safe: ReLU is elementwise on the summed
        segments, so fusing cannot change which values are added, only spare
        the intermediate)."""
        out = self.scatter_add(values, index, num_segments)
        return out * (out > 0)

    def segment_sum(
        self, values: np.ndarray, index: np.ndarray, num_segments: int
    ) -> np.ndarray:
        """Alias of :meth:`scatter_add` under its graph-pooling name."""
        return self.scatter_add(values, index, num_segments)

    def segment_mean(
        self, values: np.ndarray, index: np.ndarray, num_segments: int
    ) -> np.ndarray:
        sums = self.scatter_add(values, index, num_segments)
        counts = self.bincount(index, minlength=num_segments).astype(np.float64)
        counts[counts == 0] = 1.0
        return sums * (1.0 / counts).reshape(-1, 1)

    def bincount(
        self,
        index: np.ndarray,
        minlength: int = 0,
        weights: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorised occurrence (or weighted) counting over ``index``."""
        return np.bincount(
            np.asarray(index, dtype=np.int64), weights=weights, minlength=minlength
        )


# ----------------------------------------------------------------- registry

_REGISTRY: dict[str, type[ArrayBackend]] = {}
_INSTANCES: dict[str, ArrayBackend] = {}
_REGISTRY_LOCK = threading.Lock()

_DEFAULT: ArrayBackend | None = None
_OVERRIDES = threading.local()


def register_backend(cls: type[ArrayBackend]) -> type[ArrayBackend]:
    """Register a backend class under its ``name`` (also usable as a decorator)."""
    if not cls.name or cls.name == "base":
        raise ValueError("backend classes must define a unique name")
    with _REGISTRY_LOCK:
        _REGISTRY[cls.name] = cls
    return cls


def available_backends() -> tuple[str, ...]:
    with _REGISTRY_LOCK:
        return tuple(sorted(_REGISTRY))


def instantiated_backends() -> dict[str, ArrayBackend]:
    """Snapshot of the backend singletons this process actually constructed.

    Metrics surfaces report counters from this instead of instantiating
    every registered backend: constructing a backend just to read its zeros
    would run its accelerator probe (a ``numba``/``torch`` import) inside a
    metrics scrape.
    """
    with _REGISTRY_LOCK:
        return dict(_INSTANCES)


def get_backend(name: str) -> ArrayBackend:
    """The process-wide singleton instance of the named backend."""
    with _REGISTRY_LOCK:
        instance = _INSTANCES.get(name)
        if instance is None:
            cls = _REGISTRY.get(name)
            if cls is None:
                raise ValueError(
                    f"unknown backend {name!r} (available: {', '.join(sorted(_REGISTRY))})"
                )
            instance = _INSTANCES[name] = cls()
    return instance


def resolve_backend_name(name: str | None = None) -> str:
    """Explicit name, else ``$REPRO_BACKEND``, else ``numpy`` — validated."""
    resolved = name or os.environ.get(BACKEND_ENV_VAR) or "numpy"
    with _REGISTRY_LOCK:
        known = resolved in _REGISTRY
    if not known:
        raise ValueError(
            f"unknown backend {resolved!r} (available: {', '.join(available_backends())})"
        )
    return resolved


def default_backend() -> ArrayBackend:
    """The process default (``$REPRO_BACKEND``-selected on first use)."""
    global _DEFAULT
    backend = _DEFAULT
    if backend is None:
        backend = _DEFAULT = get_backend(resolve_backend_name())
    return backend


def set_default_backend(backend: ArrayBackend | str | None) -> None:
    """Set (or with ``None`` reset to env-resolved) the process default."""
    global _DEFAULT
    if isinstance(backend, str):
        backend = get_backend(resolve_backend_name(backend))
    _DEFAULT = backend


def active_backend() -> ArrayBackend:
    """The backend the forward path routes through right now, this thread."""
    stack = getattr(_OVERRIDES, "stack", None)
    if stack:
        return stack[-1]
    return default_backend()


@contextlib.contextmanager
def use_backend(backend: ArrayBackend | str):
    """Thread-local backend override for one ``with`` block (re-entrant)."""
    if isinstance(backend, str):
        backend = get_backend(resolve_backend_name(backend))
    stack = getattr(_OVERRIDES, "stack", None)
    if stack is None:
        stack = _OVERRIDES.stack = []
    stack.append(backend)
    try:
        yield backend
    finally:
        stack.pop()
