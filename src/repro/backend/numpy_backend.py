"""The ``numpy`` reference backend.

This is the bitwise ground truth: it inherits the reference kernels from
:class:`~repro.backend.base.ArrayBackend` unchanged, so a model served
through it produces exactly the floats the pre-backend code produced.  Every
other backend is tested against it for bitwise equality on the forward path
(or, for an explicit accelerator-tier backend advertising a ``tolerance``,
for closeness at exactly that tolerance).

The grouped-relation kernels (``grouped_matmul`` / ``scatter_add_grouped``)
are inherited too: their reference implementations loop relation blocks in
the exact floating-point expression order of the historical per-relation
forward, so the grouped one-GEMM layer layout is bitwise-identical to the
loop it replaces on this backend — the property the equivalence suite pins.
"""

from __future__ import annotations

from repro.backend.base import ArrayBackend, register_backend


@register_backend
class NumpyBackend(ArrayBackend):
    """Plain numpy kernels; fresh allocations, no fusion beyond the reference."""

    name = "numpy"
    accelerator = "none"
    tolerance = None
