"""The ``numpy`` reference backend.

This is the bitwise ground truth: it inherits the reference kernels from
:class:`~repro.backend.base.ArrayBackend` unchanged, so a model served
through it produces exactly the floats the pre-backend code produced.  Every
other backend is tested against it for bitwise equality on the forward path.
"""

from __future__ import annotations

from repro.backend.base import ArrayBackend, register_backend


@register_backend
class NumpyBackend(ArrayBackend):
    """Plain numpy kernels; fresh allocations, no fusion beyond the reference."""

    name = "numpy"
    accelerator = "none"
