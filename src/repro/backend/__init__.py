"""Pluggable compute backends for the packed mega-graph forward.

The serving hot path — dense matmuls plus scatter-adds over relation edges —
is expressed once against the :class:`ArrayBackend` protocol and routed
through :func:`active_backend`, so the whole nn → gnn → serve stack switches
kernels in one place:

* ``numpy`` (:class:`NumpyBackend`) — the bitwise reference; exactly the
  operations the pre-backend code ran;
* ``optimized`` (:class:`OptimizedBackend`) — workspace-pooled, fusing, with
  optional numba/torch acceleration and clean fallback; bitwise-identical to
  the reference on the forward path.

Selection: ``RuntimeConfig.backend`` (the service pins it per request via
:func:`use_backend`), :func:`set_default_backend`, or the ``REPRO_BACKEND``
environment variable; unset means ``numpy``.
"""

from repro.backend.base import (
    BACKEND_ENV_VAR,
    ArrayBackend,
    BackendStats,
    active_backend,
    available_backends,
    default_backend,
    get_backend,
    instantiated_backends,
    register_backend,
    resolve_backend_name,
    set_default_backend,
    use_backend,
)
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.optimized import ACCEL_ENV_VAR, OptimizedBackend

__all__ = [
    "BACKEND_ENV_VAR",
    "ACCEL_ENV_VAR",
    "ArrayBackend",
    "BackendStats",
    "NumpyBackend",
    "OptimizedBackend",
    "active_backend",
    "available_backends",
    "default_backend",
    "get_backend",
    "instantiated_backends",
    "register_backend",
    "resolve_backend_name",
    "set_default_backend",
    "use_backend",
]
