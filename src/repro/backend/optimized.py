"""The ``optimized`` backend: fused kernels, pooled scratch, optional accel.

Three levers, all bitwise-transparent on the forward path:

* **Fusion** — ``linear`` (affine with an in-place bias add on the fresh
  GEMM result), ``add_relu`` (the conv's update+aggregation activation,
  masked in place) and ``scatter_add_relu`` run their elementwise tails in
  place on the freshly computed result instead of materialising a chain of
  full-size temporaries.  Measured on the packed mega-graph shapes this
  roughly halves ``linear`` and cuts ``add_relu`` to a third.  The
  arithmetic is exactly the reference's (same ops, same order), so bits
  never change.
* **Workspace pooling** — scratch that never escapes a kernel (the boolean
  activation masks) comes from a per-thread free-list pool inside a
  :meth:`forward_scope` and recycles when the scope exits.  Kernel
  *outputs* are deliberately fresh allocations: writing GEMM/gather results
  ``out=`` into reused buffers measured slower than the allocator on the
  serving shapes (ufunc identity checks plus cold pages), and fresh outputs
  are what make it safe for results to outlive the scope-free training path.
* **Optional acceleration** — when ``numba`` is importable, ``scatter_add``
  runs as a compiled row-order accumulation loop (identical add order to the
  reference's ``bincount`` formulation, hence bitwise-identical).  ``torch``
  is used for dense matmuls only when ``REPRO_BACKEND_ACCEL=torch`` asks for
  it explicitly: whether torch's float64 GEMM is bit-identical to numpy's
  depends on both linking the same BLAS, so it is opt-in rather than
  autodetected.  With neither installed the backend silently runs its pure
  numpy kernels — same results, still faster than the reference through
  fusion.

Independent of the accelerator slot, the **grouped-relation kernels**
(``grouped_matmul`` / ``scatter_add_grouped`` — the one-GEMM-per-layer
forward) use ``scipy.sparse`` CSR operators when scipy is importable: each
relation block's scatter becomes one cached CSR × dense product whose
per-destination accumulation order is exactly the reference's (CSR row sums
run over column indices in ascending order, which is original edge order for
the stably sorted layout), so the fused path stays bitwise-identical.
Without scipy the inherited reference loop runs — same results.

``REPRO_BACKEND_ACCEL`` values: ``auto`` (default — use numba if present),
``numba``, ``torch``, ``f32``, ``none``.  The ``f32`` tier is the explicit
*tolerance* opt-in: inside inference forward scopes every dense kernel casts
to float32 (inputs through an identity-keyed cast cache, intermediates
staying float32 end to end) and the backend advertises
``tolerance = (rtol, atol)`` instead of the bitwise contract — roughly 2-3x
on GEMM-bound packed forwards for ~1e-7 relative error.  Training paths run
outside forward scopes and keep float64 bit-exactness.
"""

from __future__ import annotations

import os
import weakref

import numpy as np

from repro.backend.base import ArrayBackend, register_backend

#: Environment variable steering optional acceleration of this backend.
ACCEL_ENV_VAR = "REPRO_BACKEND_ACCEL"

#: Free-list depth per (dtype, shape) bucket; beyond this, buffers are
#: dropped to the allocator instead of hoarded.
_MAX_POOLED_PER_KEY = 16

#: Per-thread budget for cached scatter flat-index expansions.
_FLAT_CACHE_BYTES = 32 * 1024 * 1024


def _detect_accelerator(requested: str | None = None) -> tuple[str, object | None]:
    """Resolve the accelerator per ``REPRO_BACKEND_ACCEL`` with clean fallback."""
    if requested is None:
        requested = os.environ.get(ACCEL_ENV_VAR, "auto")
    requested = requested.strip().lower()
    if requested not in ("auto", "numba", "torch", "f32", "none"):
        raise ValueError(
            f"unknown {ACCEL_ENV_VAR} value {requested!r} "
            "(expected auto, numba, torch, f32 or none)"
        )
    if requested == "none":
        return "none", None
    if requested == "f32":
        # Pure-numpy single-precision tier; no import to probe.  The caller
        # (OptimizedBackend) advertises the tolerance contract.
        return "f32", None
    if requested == "torch":
        try:
            import torch  # noqa: PLC0415 - optional dependency probe

            return "torch", torch
        except ImportError:
            return "none", None
    # auto / numba: numba's scatter kernel is bitwise-safe, so it may autobind.
    try:
        import numba  # noqa: PLC0415 - optional dependency probe

        return "numba", numba
    except ImportError:
        return "none", None


def _compile_numba_scatter(numba_module):
    """Row-order scatter-add loops, compiled; add order matches the reference."""

    @numba_module.njit(cache=False)
    def scatter_2d(values, index, out):  # pragma: no cover - compiled
        rows, cols = values.shape
        for i in range(rows):
            row = index[i]
            for j in range(cols):
                out[row, j] += values[i, j]

    @numba_module.njit(cache=False)
    def scatter_1d(values, index, out):  # pragma: no cover - compiled
        for i in range(values.shape[0]):
            out[index[i]] += values[i]

    return scatter_1d, scatter_2d


def _probe_scipy_sparse():
    """Import ``scipy.sparse`` if available (powers the cached CSR scatters)."""
    try:
        import scipy.sparse  # noqa: PLC0415 - optional dependency probe

        return scipy.sparse
    except ImportError:
        return None


#: Tolerance contract of the ``f32`` accelerator tier.  Measured end-to-end
#: prediction error of the single-precision packed forward is ~3e-7 relative;
#: the advertised contract leaves two orders of magnitude headroom.
F32_TOLERANCE = (1e-4, 1e-6)


@register_backend
class OptimizedBackend(ArrayBackend):
    """Fusing, scratch-pooled backend; bitwise-identical to ``numpy``.

    Exception: constructed with the explicit ``f32`` accelerator opt-in
    (``REPRO_BACKEND_ACCEL=f32`` or ``OptimizedBackend(accel="f32")``) the
    backend advertises :data:`F32_TOLERANCE` instead — see the module
    docstring for the tier's casting rules.
    """

    name = "optimized"

    def __init__(self, accel: str | None = None) -> None:
        super().__init__()
        self.accelerator, self._accel_module = _detect_accelerator(accel)
        self._sparse = _probe_scipy_sparse()
        if self.accelerator == "f32":
            self.tolerance = F32_TOLERANCE
        self._numba_scatter = None
        if self.accelerator == "numba":
            try:
                self._numba_scatter = _compile_numba_scatter(self._accel_module)
            except Exception:
                # A broken numba install must degrade, not take serving down.
                self.accelerator = "none"
                self._accel_module = None

    # ------------------------------------------------------------ workspaces

    def _pool(self) -> dict:
        pool = getattr(self._tls, "pool", None)
        if pool is None:
            pool = self._tls.pool = {}
        return pool

    def _alloc(self, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """A scope-owned scratch buffer (fresh when no scope is active)."""
        scope = self._scope()
        if scope is None:
            return np.empty(shape, dtype=dtype)
        key = (np.dtype(dtype).str, shape)
        free = self._pool().get(key)
        if free:
            scope.count("workspace_hits")
            buffer = free.pop()
        else:
            scope.count("workspace_misses")
            buffer = np.empty(shape, dtype=dtype)
        scope.buffers.append(buffer)
        return buffer

    def _recycle(self, scope) -> None:
        pool = self._pool()
        for buffer in scope.buffers:
            key = (buffer.dtype.str, buffer.shape)
            free = pool.setdefault(key, [])
            if len(free) < _MAX_POOLED_PER_KEY:
                free.append(buffer)
        scope.buffers.clear()

    def clear_workspaces(self) -> None:
        """Drop this thread's free lists (tests / memory-pressure hook)."""
        self._pool().clear()

    def empty(self, shape, dtype=np.float64) -> np.ndarray:
        if isinstance(shape, int):
            shape = (shape,)
        return self._alloc(tuple(shape), dtype)

    def _mask(self, shape: tuple[int, ...]) -> np.ndarray:
        """A pooled boolean mask; never escapes the kernel that asked for it."""
        return self._alloc(shape, dtype=np.bool_)

    def _dense(self, x) -> bool:
        if not isinstance(x, np.ndarray):
            return False
        return x.dtype == np.float64 or (
            x.dtype == np.float32 and self.accelerator == "f32"
        )

    # ------------------------------------------------------------- f32 tier

    def _f32_active(self) -> bool:
        """Single-precision casting applies only inside inference scopes.

        Every ``predict`` path opens a :meth:`forward_scope`; training never
        does, and the autograd tensor routes its forward arithmetic through
        these kernels unconditionally — so gating the cast on the scope is
        what keeps gradients (and therefore fitted weights) float64-exact
        even under the ``f32`` opt-in.
        """
        return self.accelerator == "f32" and self._scope() is not None

    def _f32(self, x):
        """Cast one float64 operand to float32, cached by array identity.

        Weights, biases and the packed batch's feature arrays are reused
        across every layer of every ensemble member, so their casts are
        computed once per array and held through a weak reference (dead
        referents invalidate and evict, exactly like the scatter flat-index
        cache).  Float32 intermediates pass through untouched — after the
        first layer the whole forward flows single precision.
        """
        if not (isinstance(x, np.ndarray) and x.dtype == np.float64):
            return x
        cache = getattr(self._tls, "f32_cache", None)
        if cache is None:
            cache = self._tls.f32_cache = {}
        key = id(x)
        entry = cache.get(key)
        if entry is not None and entry[0]() is x:
            return entry[1]
        cast = x.astype(np.float32)
        try:
            anchor = weakref.ref(x)
        except TypeError:
            return cast
        for stale_key in [k for k, v in cache.items() if v[0]() is None]:
            del cache[stale_key]
        if sum(v[1].nbytes for v in cache.values()) + cast.nbytes > _FLAT_CACHE_BYTES:
            cache.clear()
        cache[key] = (anchor, cast)
        return cast

    # --------------------------------------------------------------- kernels

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self._count("matmuls")
        if self._f32_active():
            a = self._f32(a)
            b = self._f32(b)
        if (
            self.accelerator == "torch"
            and a.ndim == 2
            and b.ndim == 2
            and self._dense(a)
            and self._dense(b)
        ):
            torch = self._accel_module
            return torch.matmul(
                torch.from_numpy(np.ascontiguousarray(a)),
                torch.from_numpy(np.ascontiguousarray(b)),
            ).numpy()
        return a @ b

    def linear(
        self, x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None
    ) -> np.ndarray:
        self._count("fused_linear")
        if self._f32_active():
            x = self._f32(x)
            weight = self._f32(weight)
            bias = None if bias is None else self._f32(bias)
        out = self.matmul(x, weight)
        if bias is not None:
            # ``out`` is the fresh GEMM result this kernel owns — the bias
            # folds in place instead of materialising a second (rows, cols)
            # temporary.  Same addition, same bits.
            np.add(out, bias, out=out)
        return out

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self._f32_active():
            a = self._f32(a)
            b = self._f32(b)
        return a + b

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self._f32_active():
            a = self._f32(a)
            b = self._f32(b)
        return a * b

    def gather_rows(self, values: np.ndarray, index: np.ndarray) -> np.ndarray:
        if self._f32_active():
            values = self._f32(values)
        return super().gather_rows(values, index)

    def _relu_inplace(self, out: np.ndarray) -> np.ndarray:
        """In-place ``out * (out > 0)`` on a freshly computed buffer.

        Same multiply-by-mask arithmetic as the reference (preserving the
        sign bit of zeros produced from negatives); the mask is pooled
        scratch rather than a new allocation per activation.
        """
        mask = self._mask(out.shape)
        np.greater(out, 0, out=mask)
        np.multiply(out, mask, out=out)
        return out

    def relu(self, x: np.ndarray) -> np.ndarray:
        if self._f32_active():
            x = self._f32(x)
        if self._dense(x):
            mask = self._mask(x.shape)
            np.greater(x, 0, out=mask)
            return x * mask
        return x * (x > 0)

    def add_relu(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self._count("fused_add_relu")
        if self._f32_active():
            a = self._f32(a)
            b = self._f32(b)
        if self._dense(a) and self._dense(b):
            out = a + b
            return self._relu_inplace(out)
        out = a + b
        return out * (out > 0)

    def _flat_index(self, index: np.ndarray, columns: int) -> np.ndarray:
        """The reference's flat bincount index, cached by array identity.

        A packed batch scatter-adds into the same destination arrays on
        every layer of every ensemble member (:class:`GraphBatch` memoises
        them identity-stable), so the ``index * columns + arange`` expansion
        — a large int temporary per call in the reference — is computed once
        per (index array, columns) pair.  Entries hold the keyed array only
        through a *weak* reference: a dead referent both invalidates the
        entry (an ``id`` match alone could be a recycled address) and marks
        it for eviction, so the cache never pins a finished batch's arrays.
        The per-thread cache is additionally byte-bounded; callers must not
        mutate index arrays in place (none of the forward path does — graph
        structure is immutable during inference).
        """
        cache = getattr(self._tls, "flat_cache", None)
        if cache is None:
            cache = self._tls.flat_cache = {}
        key = (id(index), columns)
        entry = cache.get(key)
        if entry is not None and entry[0]() is index:
            return entry[1]
        flat = (index[:, None] * columns + np.arange(columns)).ravel()
        try:
            anchor = weakref.ref(index)
        except TypeError:
            # Some ndarray subclasses/views refuse weakrefs; skip caching.
            return flat
        # Evict dead entries on insert, and bound retained bytes: the cache
        # exists to span one batch's members, not to archive old batches.
        for stale_key in [k for k, v in cache.items() if v[0]() is None]:
            del cache[stale_key]
        if sum(v[1].nbytes for v in cache.values()) + flat.nbytes > _FLAT_CACHE_BYTES:
            cache.clear()
        cache[key] = (anchor, flat)
        return flat

    def scatter_add(
        self, values: np.ndarray, index: np.ndarray, num_segments: int
    ) -> np.ndarray:
        if self._f32_active():
            # Single-precision tier: accumulate through the float64 bincount
            # (numpy's only weighted-bincount dtype) and round the result
            # back, keeping the downstream flow float32.
            self._count("scatter_adds")
            index = np.asarray(index, dtype=np.int64)
            values = self._f32(np.asarray(values))
            if values.ndim == 2:
                columns = values.shape[1]
                if columns == 0 or values.shape[0] == 0:
                    return np.zeros((num_segments, columns), dtype=np.float32)
                flat = np.bincount(
                    self._flat_index(index, columns),
                    weights=values.ravel(),
                    minlength=num_segments * columns,
                )
                return flat.reshape(num_segments, columns).astype(np.float32)
            return np.bincount(
                index, weights=values, minlength=num_segments
            ).astype(np.float32)
        self._count("scatter_adds")
        index = np.asarray(index, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 2:
            columns = values.shape[1]
            if columns == 0 or values.shape[0] == 0:
                return np.zeros((num_segments, columns), dtype=np.float64)
            if self._numba_scatter is not None:
                # Compiled row-order accumulation: identical add order to the
                # reference's flat-bincount path, so bitwise-identical sums.
                out = np.zeros((num_segments, columns), dtype=np.float64)
                self._numba_scatter[1](np.ascontiguousarray(values), index, out)
                return out
            flat = np.bincount(
                self._flat_index(index, columns),
                weights=values.ravel(),
                minlength=num_segments * columns,
            )
            return flat.reshape(num_segments, columns)
        if values.ndim == 1 and self._numba_scatter is not None and values.shape[0]:
            out = np.zeros(num_segments, dtype=np.float64)
            self._numba_scatter[0](np.ascontiguousarray(values), index, out)
            return out
        return super().scatter_add(values, index, num_segments)

    def scatter_add_relu(
        self, values: np.ndarray, index: np.ndarray, num_segments: int
    ) -> np.ndarray:
        out = self.scatter_add(values, index, num_segments)
        # ``out`` is freshly materialised by scatter_add — fuse in place.
        return self._relu_inplace(out) if self._dense(out) else out * (out > 0)

    # ------------------------------------------------------- grouped kernels

    def _grouped_csrs(
        self, destinations: np.ndarray, offsets: np.ndarray, num_segments: int, dtype
    ) -> list:
        """Per-relation CSR scatter operators, cached by array identity.

        One batch's grouped layout (``destinations``/``offsets``) is
        identity-stable for its lifetime (:class:`GraphBatch` memoises it),
        and every layer of every ensemble member scatters through the same
        operators — so the CSR construction cost amortises across the whole
        batch, like the scatter flat-index cache.  Entries anchor the keyed
        array weakly and evict when it dies; the per-thread cache is
        byte-bounded.

        Bitwise: relation ``r``'s operator is
        ``csr_matrix((ones, (destinations[lo:hi], arange)), (N, n))`` — its
        matmat sums each destination row's contributions over ascending
        column indices, which is original edge order for the stably sorted
        layout, i.e. exactly the reference ``bincount`` accumulation order.
        """
        cache = getattr(self._tls, "csr_cache", None)
        if cache is None:
            cache = self._tls.csr_cache = {}
        key = (id(destinations), id(offsets), num_segments, dtype.str)
        entry = cache.get(key)
        if entry is not None and entry[0]() is destinations:
            return entry[1]
        operators = []
        for relation in range(len(offsets) - 1):
            lo, hi = int(offsets[relation]), int(offsets[relation + 1])
            count = hi - lo
            if count == 0:
                operators.append(None)
                continue
            operators.append(
                self._sparse.csr_matrix(
                    (
                        np.ones(count, dtype=dtype),
                        (destinations[lo:hi], np.arange(count, dtype=np.int64)),
                    ),
                    shape=(num_segments, count),
                )
            )
        try:
            anchor = weakref.ref(destinations)
        except TypeError:
            return operators
        for stale_key in [k for k, v in cache.items() if v[0]() is None]:
            del cache[stale_key]
        retained = sum(
            matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
            for _, cached in cache.values()
            for matrix in cached
            if matrix is not None
        )
        if retained > _FLAT_CACHE_BYTES:
            cache.clear()
        cache[key] = (anchor, operators)
        return operators

    def grouped_matmul(
        self, values: np.ndarray, weights: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray:
        if self._f32_active():
            values = self._f32(values)
            weights = self._f32(weights)
        return super().grouped_matmul(values, weights, offsets)

    def scatter_add_grouped(
        self,
        values: np.ndarray,
        destinations: np.ndarray,
        offsets: np.ndarray,
        num_segments: int,
    ) -> np.ndarray:
        if self._f32_active():
            values = self._f32(values)
        if self._sparse is None or not (
            isinstance(values, np.ndarray)
            and values.ndim == 2
            and values.dtype in (np.float32, np.float64)
        ):
            return super().scatter_add_grouped(
                values, destinations, offsets, num_segments
            )
        self._count("grouped_scatter_adds")
        destinations = np.asarray(destinations, dtype=np.int64)
        operators = self._grouped_csrs(
            destinations, offsets, num_segments, values.dtype
        )
        aggregated: np.ndarray | None = None
        for relation, operator in enumerate(operators):
            if operator is None:
                continue
            lo, hi = int(offsets[relation]), int(offsets[relation + 1])
            block = operator @ values[lo:hi]
            aggregated = block if aggregated is None else aggregated + block
        if aggregated is None:
            return np.zeros((num_segments, values.shape[1]), dtype=values.dtype)
        return aggregated
