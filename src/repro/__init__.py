"""PowerGear reproduction: early-stage FPGA HLS power estimation with HEC-GNN.

This package re-implements the full PowerGear system from DATE 2022:

* an HLS substrate (:mod:`repro.ir`, :mod:`repro.hls`) that lowers PolyBench
  kernel specifications into an LLVM-flavoured IR, schedules them into an FSMD
  and reports latency / resources,
* switching-activity tracing (:mod:`repro.activity`),
* the graph construction flow (:mod:`repro.graph`) with buffer insertion,
  datapath merging, graph trimming and feature annotation,
* a synthetic FPGA power substrate (:mod:`repro.power`) providing "on-board"
  ground truth and a Vivado-like baseline estimator,
* a numpy autograd / neural-network substrate (:mod:`repro.nn`),
* HEC-GNN and the baseline GNNs (:mod:`repro.gnn`),
* the HL-Pow baseline (:mod:`repro.baselines`),
* Pareto-guided design-space exploration (:mod:`repro.dse`),
* the end-to-end PowerGear flow (:mod:`repro.flow`), and
* the serving subsystem (:mod:`repro.serve`): versioned model registry,
  batched inference, content-addressed caching and the
  ``PowerEstimationService`` façade.
"""

from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.flow.dataset_gen import DatasetGenerator, DatasetConfig
from repro.graph.hetero_graph import HeteroGraph
from repro.graph.dataset import GraphSample, GraphDataset

__all__ = [
    "PowerGear",
    "PowerGearConfig",
    "DatasetGenerator",
    "DatasetConfig",
    "HeteroGraph",
    "GraphSample",
    "GraphDataset",
    "__version__",
]

__version__ = "0.1.0"
