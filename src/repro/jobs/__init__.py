"""``repro.jobs`` — design-space exploration as a first-class async job.

The paper's headline workload (Pareto-guided DSE, hundreds of featurisations
per call) outgrew the one-blocking-request shape: this package runs each
exploration as a **job** with a submit/poll/stream/cancel lifecycle over the
incremental :class:`~repro.dse.explorer.ParetoExplorer` loop.

* :mod:`repro.jobs.job` — the :class:`Job` record: the
  ``queued → running → succeeded | failed | cancelled`` state machine, the
  seq-numbered update log, and job ids that embed the kernel so the cluster
  router can hash a job onto its owning replica from the id alone;
* :mod:`repro.jobs.store` — :class:`JobStore`, atomic per-job JSON
  checkpoints (by default under the persistent cache dir) written after
  every explorer iteration, so a SIGKILLed service resumes mid-job with a
  bitwise-identical final frontier;
* :mod:`repro.jobs.manager` — :class:`JobManager`: bounded job table,
  per-client admission quotas, fair round-robin FIFO scheduling over a
  runner-thread pool, cooperative cancel, and resume-at-boot.

The HTTP surface (``POST /v1/jobs/explore``, ``GET /v1/jobs/{id}``,
``GET /v1/jobs/{id}/updates`` with chunked streaming,
``POST /v1/jobs/{id}/cancel``) lives in :mod:`repro.runtime.http` and is
proxied kernel-affine by :mod:`repro.cluster.router`.
"""

from __future__ import annotations

from repro.jobs.job import (
    ACTIVE_STATES,
    CANCELLED,
    FAILED,
    Job,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    TERMINAL_STATES,
    kernel_of_job_id,
    new_job_id,
)
from repro.jobs.manager import (
    JobManager,
    JobQuotaError,
    JobTableFullError,
    UnknownJobError,
    jobs_dir_for,
)
from repro.jobs.store import JobStore

__all__ = [
    "ACTIVE_STATES",
    "CANCELLED",
    "FAILED",
    "Job",
    "JobManager",
    "JobQuotaError",
    "JobStore",
    "JobTableFullError",
    "QUEUED",
    "RUNNING",
    "SUCCEEDED",
    "TERMINAL_STATES",
    "UnknownJobError",
    "jobs_dir_for",
    "kernel_of_job_id",
    "new_job_id",
]
