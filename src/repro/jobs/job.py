"""The job record: one exploration's identity, state machine and update log.

A job moves ``queued → running → succeeded | failed | cancelled``; the
terminal states are absorbing.  Everything about a job is JSON-shaped by
construction — the record round-trips through :class:`~repro.jobs.store
.JobStore` checkpoints, and the snapshot the API serves is a plain dict — so
a job interrupted by SIGKILL is rebuilt from its last checkpoint with
nothing lost but the iterations since it.

Job ids embed the kernel (``"<kernel>-<hex>"``): the cluster router derives
the routing key from the id alone (``rsplit("-", 1)``), so every
``GET /v1/jobs/{id}`` hashes onto the replica whose warm state owns the job
without a cluster-wide lookup table.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

from repro.dse.explorer import ExplorationState

__all__ = [
    "ACTIVE_STATES",
    "CANCELLED",
    "FAILED",
    "Job",
    "QUEUED",
    "RUNNING",
    "SUCCEEDED",
    "TERMINAL_STATES",
    "new_job_id",
    "kernel_of_job_id",
]

QUEUED = "queued"
RUNNING = "running"
SUCCEEDED = "succeeded"
FAILED = "failed"
CANCELLED = "cancelled"

ACTIVE_STATES = frozenset({QUEUED, RUNNING})
TERMINAL_STATES = frozenset({SUCCEEDED, FAILED, CANCELLED})


def new_job_id(kernel: str) -> str:
    """Mint a job id whose routing key is recoverable from the id itself."""
    return f"{kernel}-{os.urandom(8).hex()}"


def kernel_of_job_id(job_id: str) -> str:
    """Inverse of :func:`new_job_id` (the hex suffix never contains ``-``)."""
    kernel, _, _ = job_id.rpartition("-")
    return kernel or job_id


@dataclass
class Job:
    """One exploration job: request, state machine, update log, checkpoint."""

    job_id: str
    kernel: str
    client: str
    #: The submission's exploration parameters:
    #: ``{"budget": float|None, "dse_config": dict|None}``.
    params: dict
    state: str = QUEUED
    created_s: float = field(default_factory=time.time)
    started_s: float | None = None
    finished_s: float | None = None
    error: str | None = None
    #: The finished report (``explore_report_to_json``) once succeeded.
    result: dict | None = None
    #: Seq-numbered update log; ``updates[n]["seq"] == n + 1``.
    updates: list[dict] = field(default_factory=list)
    #: The checkpointed mid-flight explorer state (``None`` before the first
    #: iteration and after the job finishes).
    explorer_state: ExplorationState | None = None
    #: How many times this job resumed after an interrupted run.
    resumes: int = 0
    #: The deployment-plan seq the job started under, pinned so resume
    #: replays against the *same* plan and stays bitwise even if a new plan
    #: was published mid-interruption.  ``0`` pins "no plan was installed";
    #: ``None`` marks a pre-deployment checkpoint (resume snapshots live).
    plan_seq: int | None = None
    #: Runtime-only cooperative-cancel flag (not persisted).
    cancel_event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )

    @property
    def seq(self) -> int:
        return len(self.updates)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def snapshot(self) -> dict:
        """What ``GET /v1/jobs/{id}`` serves (no update log, no rng state)."""
        progress = None
        if self.explorer_state is not None:
            progress = {
                "sampled": len(self.explorer_state.sampled),
                "budget_count": self.explorer_state.budget_count,
                "iterations": self.explorer_state.iterations,
            }
        return {
            "job_id": self.job_id,
            "kernel": self.kernel,
            "client": self.client,
            "state": self.state,
            "params": self.params,
            "created_s": self.created_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "seq": self.seq,
            "resumes": self.resumes,
            "plan_seq": self.plan_seq,
            "progress": progress,
            "error": self.error,
            "result": self.result,
        }

    def to_store(self) -> dict:
        """The checkpoint payload (everything :meth:`from_store` rebuilds)."""
        return {
            "version": 1,
            "record": {
                "job_id": self.job_id,
                "kernel": self.kernel,
                "client": self.client,
                "params": self.params,
                "state": self.state,
                "created_s": self.created_s,
                "started_s": self.started_s,
                "finished_s": self.finished_s,
                "error": self.error,
                "result": self.result,
                "resumes": self.resumes,
                "plan_seq": self.plan_seq,
            },
            "updates": self.updates,
            "explorer_state": (
                self.explorer_state.to_json()
                if self.explorer_state is not None
                else None
            ),
        }

    @staticmethod
    def from_store(payload: dict) -> "Job":
        record = payload["record"]
        state = payload.get("explorer_state")
        return Job(
            job_id=record["job_id"],
            kernel=record["kernel"],
            client=record["client"],
            params=record["params"],
            state=record["state"],
            created_s=record["created_s"],
            started_s=record.get("started_s"),
            finished_s=record.get("finished_s"),
            error=record.get("error"),
            result=record.get("result"),
            resumes=record.get("resumes", 0),
            plan_seq=record.get("plan_seq"),
            updates=list(payload.get("updates") or []),
            explorer_state=(
                ExplorationState.from_json(state) if state is not None else None
            ),
        )
