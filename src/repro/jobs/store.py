"""Durable job checkpoints: one JSON file per job, atomically replaced.

The store rides in a ``jobs/`` subdirectory of the persistent cache dir by
default — deliberately: the cache's GC only scans its ``samples/`` subtree,
its single-owner ``flock`` already arbitrates writers, and a deployment that
configured a durable cache dir gets durable jobs with zero extra knobs.

Writes go through the tmp-file + ``os.replace`` dance, so a SIGKILL leaves
either the previous checkpoint or the new one, never a torn file; each
checkpoint is the state *after* a completed explorer iteration, which is what
makes resume bitwise (re-running from the checkpoint replays the exact
trajectory the uninterrupted run would have taken).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["JobStore"]


class JobStore:
    """Filesystem persistence for :class:`~repro.jobs.job.Job` checkpoints."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, job_id: str) -> Path:
        # Job ids are minted server-side (kernel + hex), but the id also
        # arrives via resume-time directory listings; keep the mapping flat
        # and refuse anything that would escape the directory.
        if "/" in job_id or job_id in (".", ".."):
            raise ValueError(f"invalid job id {job_id!r}")
        return self.directory / f"{job_id}.json"

    def save(self, job_id: str, payload: dict) -> None:
        """Atomically write one job's checkpoint."""
        path = self._path(job_id)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, allow_nan=False), encoding="utf-8")
        os.replace(tmp, path)

    def load(self, job_id: str) -> dict | None:
        path = self._path(job_id)
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            # A checkpoint that cannot be read is a checkpoint that cannot
            # resume; surfacing it as absent (rather than crashing boot) is
            # the only useful degradation.
            return None

    def load_all(self) -> dict[str, dict]:
        """Every readable checkpoint, keyed by job id."""
        payloads: dict[str, dict] = {}
        for path in sorted(self.directory.glob("*.json")):
            payload = self.load(path.stem)
            if payload is not None and "record" in payload:
                payloads[path.stem] = payload
        return payloads

    def delete(self, job_id: str) -> None:
        try:
            self._path(job_id).unlink()
        except FileNotFoundError:
            pass
