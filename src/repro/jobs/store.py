"""Durable job checkpoints: one JSON file per job, atomically replaced.

The store rides in a ``jobs/`` subdirectory of the persistent cache dir by
default — deliberately: the cache's GC only scans its ``samples/`` subtree,
its single-owner ``flock`` already arbitrates writers, and a deployment that
configured a durable cache dir gets durable jobs with zero extra knobs.

Writes go through the tmp-file + ``os.replace`` dance, so a SIGKILL leaves
either the previous checkpoint or the new one, never a torn file; each
checkpoint is the state *after* a completed explorer iteration, which is what
makes resume bitwise (re-running from the checkpoint replays the exact
trajectory the uninterrupted run would have taken).

**Claims.**  Several replicas may legitimately share one jobs directory (the
cluster tier points every replica at the same persistent cache dir).  Without
arbitration, two managers booting at once would each resume the same
interrupted checkpoint and run it twice — duplicate work, and two writers
interleaving checkpoints of diverging trajectories.  :meth:`claim` takes an
advisory ``flock`` on a per-job ``<job_id>.claim`` file: exactly one process
holds a job at a time, the lock dies with the holder (so a SIGKILLed owner's
jobs become claimable with no lease timers), and an unclaimable job at resume
is simply skipped — its owner is alive and running it.  Claim files are never
unlinked on release, only on :meth:`delete`: unlinking would open the classic
flock race where a second process locks the orphaned inode while a third
creates (and locks) a fresh file under the same name, leaving two "owners".
"""

from __future__ import annotations

import json
import os
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX: claims degrade to no-ops
    fcntl = None

__all__ = ["JobStore"]


class JobStore:
    """Filesystem persistence for :class:`~repro.jobs.job.Job` checkpoints."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Open claim-file handles this process holds, by job id.  The flock
        #: lives on the file descriptor, so the handle must stay open for as
        #: long as the claim is held.
        self._claims: dict[str, object] = {}

    def _path(self, job_id: str) -> Path:
        # Job ids are minted server-side (kernel + hex), but the id also
        # arrives via resume-time directory listings; keep the mapping flat
        # and refuse anything that would escape the directory.
        if "/" in job_id or job_id in (".", ".."):
            raise ValueError(f"invalid job id {job_id!r}")
        return self.directory / f"{job_id}.json"

    def save(self, job_id: str, payload: dict) -> None:
        """Atomically write one job's checkpoint."""
        path = self._path(job_id)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, allow_nan=False), encoding="utf-8")
        os.replace(tmp, path)

    def load(self, job_id: str) -> dict | None:
        path = self._path(job_id)
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            # A checkpoint that cannot be read is a checkpoint that cannot
            # resume; surfacing it as absent (rather than crashing boot) is
            # the only useful degradation.
            return None

    def load_all(self) -> dict[str, dict]:
        """Every readable checkpoint, keyed by job id."""
        payloads: dict[str, dict] = {}
        for path in sorted(self.directory.glob("*.json")):
            payload = self.load(path.stem)
            if payload is not None and "record" in payload:
                payloads[path.stem] = payload
        return payloads

    def delete(self, job_id: str) -> None:
        self.release(job_id)
        try:
            self._path(job_id).unlink()
        except FileNotFoundError:
            pass
        # The one place a claim file may go away: the job itself is gone, so
        # the name can never be re-claimed concurrently.
        try:
            self._claim_path(job_id).unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------ claims

    def _claim_path(self, job_id: str) -> Path:
        return self._path(job_id).parent / f"{job_id}.claim"

    def claim(self, job_id: str) -> bool:
        """Take (or re-affirm) this process's exclusive hold on one job.

        Non-blocking: ``False`` means another live process holds the job —
        skip it, its owner is running it.  Idempotent per store instance.
        Platforms without ``fcntl`` degrade to unarbitrated single-process
        behaviour (every claim succeeds), matching the pre-claim semantics.
        """
        if fcntl is None:
            return True
        if job_id in self._claims:
            return True
        # "a" (append) never truncates a file another process may hold, and
        # the file is deliberately left in place on release — see the module
        # docstring for the unlink race this avoids.
        handle = open(self._claim_path(job_id), "a")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.close()
            return False
        self._claims[job_id] = handle
        return True

    def release(self, job_id: str) -> None:
        """Drop this process's claim (closing the fd releases the flock)."""
        handle = self._claims.pop(job_id, None)
        if handle is not None:
            handle.close()

    def release_all(self) -> None:
        """Drop every claim this process holds (manager shutdown)."""
        for job_id in list(self._claims):
            self.release(job_id)
