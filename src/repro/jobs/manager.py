"""The job manager: bounded table, fair FIFO scheduling, resumable runs.

:class:`JobManager` turns the service's blocking ``explore`` into the
submit/poll/stream/cancel lifecycle:

* **Admission** — the job table is bounded (finished jobs are evicted oldest
  first to make room; a table full of *live* jobs is typed backpressure) and
  each client holds at most ``max_per_client`` active jobs
  (:class:`JobQuotaError` → the 429 quota envelope).
* **Fair FIFO scheduling** — one FIFO queue per client, drained round-robin
  across clients by a small pool of runner threads, so one client queueing
  fifty explorations cannot starve another's first.
* **Incremental runs** — each job drives an
  :class:`~repro.serve.service.ExplorationSession` one
  :meth:`~repro.dse.explorer.ParetoExplorer.step` at a time, publishing a
  seq-numbered update per iteration (the history entry plus the live
  frontier) and checkpointing the full explorer state through the
  :class:`~repro.jobs.store.JobStore` after every step.
* **Resume** — at construction the manager reloads the store: jobs that were
  ``queued`` or ``running`` when the process died re-enter the queue and
  continue from their checkpoint, producing the same final frontier the
  uninterrupted run would have (the incremental explorer is bitwise
  resumable by construction).

The manager needs almost nothing from the service — ``open_exploration``,
the close-hook pair, and (optionally) an ``obs`` bundle — so tests drive it
with stubs and the real service plugs in unchanged.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.jobs.job import (
    ACTIVE_STATES,
    CANCELLED,
    FAILED,
    Job,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    kernel_of_job_id,
    new_job_id,
)
from repro.jobs.store import JobStore
from repro.serve.wire import explore_report_to_json

__all__ = [
    "JobManager",
    "JobQuotaError",
    "JobTableFullError",
    "UnknownJobError",
]


class JobQuotaError(RuntimeError):
    """A client submitted past its active-jobs quota (retryable: 429)."""

    def __init__(self, client: str, active: int, limit: int) -> None:
        super().__init__(
            f"client {client!r} already has {active} active jobs "
            f"(quota {limit}); wait for one to finish or cancel it"
        )
        self.client = client
        self.active = active
        self.limit = limit


class JobTableFullError(RuntimeError):
    """The job table is full of live jobs (retryable: 429)."""

    def __init__(self, live: int, max_jobs: int) -> None:
        super().__init__(
            f"job table is full: {live} live jobs (max_jobs={max_jobs})"
        )
        self.live = live
        self.max_jobs = max_jobs


class UnknownJobError(KeyError):
    """No such job id in the table (404)."""

    def __init__(self, job_id: str) -> None:
        super().__init__(f"unknown job {job_id!r}")
        self.job_id = job_id


class JobManager:
    """Runs explorations as resumable, streamable, cancellable jobs."""

    def __init__(
        self,
        service,
        *,
        store: JobStore | str | None = None,
        max_jobs: int | None = None,
        max_per_client: int | None = None,
        runners: int | None = None,
        step_delay_s: float | None = None,
        resume: bool = True,
    ) -> None:
        runtime = getattr(service, "runtime", None)
        self.service = service
        self.max_jobs = max_jobs if max_jobs is not None else getattr(
            runtime, "max_jobs", 64
        )
        self.max_per_client = (
            max_per_client
            if max_per_client is not None
            else getattr(runtime, "max_jobs_per_client", 4)
        )
        self.runners = runners if runners is not None else getattr(
            runtime, "job_runners", 2
        )
        self.step_delay_s = (
            step_delay_s
            if step_delay_s is not None
            else getattr(runtime, "job_step_delay_s", 0.0)
        )
        if self.max_jobs < 1 or self.max_per_client < 1 or self.runners < 1:
            raise ValueError("max_jobs, max_per_client and runners must be >= 1")
        if isinstance(store, (str, bytes)) or hasattr(store, "__fspath__"):
            store = JobStore(store)
        self.store: JobStore | None = store
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._queues: dict[str, deque[str]] = {}
        #: Round-robin cursor over client names (fairness across clients).
        self._rr: list[str] = []
        self._rr_pos = 0
        self._threads: list[threading.Thread] = []
        self._closed = False
        self._obs = getattr(service, "obs", None)
        self._gauge = None
        self._transitions = None
        if self._obs is not None:
            # Idempotent registration: a second manager over the same service
            # (tests) reuses the same families.
            self._gauge = self._obs.metrics.gauge(
                "repro_jobs",
                "Jobs in the table by state",
                labelnames=("state",),
            )
            self._transitions = self._obs.metrics.counter(
                "repro_job_transitions_total",
                "Job state transitions",
                labelnames=("state",),
            )
        add_hook = getattr(service, "add_close_hook", None)
        if add_hook is not None:
            add_hook(self.close)
        if resume and self.store is not None:
            self.resume()

    # ------------------------------------------------------------------ public

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(
        self,
        kernel: str,
        *,
        budget: float | None = None,
        dse_config: dict | None = None,
        client: str = "default",
    ) -> dict:
        """Admit one exploration job; returns its snapshot (``state=queued``)."""
        if budget is not None and dse_config is not None:
            raise ValueError("pass either budget or dse_config, not both")
        params = {"budget": budget, "dse_config": dse_config}
        with self._cond:
            if self._closed:
                raise RuntimeError("job manager is closed")
            active = sum(
                1
                for job in self._jobs.values()
                if job.client == client and job.state in ACTIVE_STATES
            )
            if active >= self.max_per_client:
                raise JobQuotaError(client, active, self.max_per_client)
            self._make_room()
            job = Job(
                job_id=new_job_id(kernel),
                kernel=kernel,
                client=client,
                params=params,
            )
            self._jobs[job.job_id] = job
            if self.store is not None:
                # Fresh ids cannot collide, so this always succeeds; taking
                # the claim at submit (not first run) means a sibling manager
                # sharing the jobs dir can never resume-steal a queued job.
                self.store.claim(job.job_id)
            self._enqueue(job)
            self._record_event("job_submit", job)
            self._count_transition(QUEUED)
            self._checkpoint(job)
            self._ensure_runners()
            self._cond.notify_all()
            self._refresh_gauges()
            return job.snapshot()

    def get(self, job_id: str) -> dict:
        with self._lock:
            return self._job(job_id).snapshot()

    def list(self, client: str | None = None) -> list[dict]:
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda j: j.created_s)
            return [
                job.snapshot()
                for job in jobs
                if client is None or job.client == client
            ]

    def updates(self, job_id: str, since: int = 0) -> dict:
        """Updates with ``seq > since`` plus the job's current snapshot."""
        with self._lock:
            job = self._job(job_id)
            return self._updates_payload(job, since)

    def wait_updates(self, job_id: str, since: int = 0, timeout: float = 30.0) -> dict:
        """Long-poll flavour of :meth:`updates`: blocks until news or timeout.

        Returns as soon as an update with ``seq > since`` exists or the job
        is terminal; otherwise after ``timeout`` seconds with an empty list.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            job = self._job(job_id)
            while job.seq <= since and not job.terminal and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            return self._updates_payload(job, since)

    def wait(self, job_id: str, timeout: float | None = None) -> dict:
        """Block until the job is terminal (or timeout); returns its snapshot."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            job = self._job(job_id)
            while not job.terminal and not self._closed:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    break
                self._cond.wait(remaining if remaining is not None else 1.0)
            return job.snapshot()

    def cancel(self, job_id: str) -> dict:
        """Cancel a job: queued jobs die immediately, running ones at the
        next iteration boundary; cancelling a terminal job is a no-op."""
        with self._cond:
            job = self._job(job_id)
            if job.terminal:
                return job.snapshot()
            if job.state == QUEUED:
                queue = self._queues.get(job.client)
                if queue is not None and job.job_id in queue:
                    queue.remove(job.job_id)
                self._finish(job, CANCELLED)
            else:
                # Cooperative: the runner observes the flag between explorer
                # iterations and performs the terminal transition itself.
                job.cancel_event.set()
                self._record_event("job_cancel", job)
            return job.snapshot()

    def resume(self) -> int:
        """Reload checkpoints; re-enqueue interrupted jobs.  Returns how many.

        Active checkpoints are claimed first (an advisory per-job ``flock``,
        see :class:`~repro.jobs.store.JobStore`): a job another live manager
        holds is skipped *entirely* — not even loaded into the table — so two
        replicas sharing one jobs directory can never both resume the same
        interrupted exploration.  The router still finds the owner: an
        unknown-job 404 walks the whole replica preference order.  Terminal
        checkpoints load unclaimed (they are read-only history).
        """
        if self.store is None:
            return 0
        resumed = 0
        with self._cond:
            for job_id, payload in self.store.load_all().items():
                if job_id in self._jobs:
                    continue
                try:
                    job = Job.from_store(payload)
                except (KeyError, TypeError, ValueError):
                    continue  # unreadable checkpoint: skip, don't crash boot
                if job.state in ACTIVE_STATES and not self.store.claim(job.job_id):
                    continue  # a sibling manager owns this job; leave it be
                self._jobs[job.job_id] = job
                if job.state in ACTIVE_STATES:
                    # A job found queued/running in the store was interrupted
                    # mid-flight; it continues from its checkpoint.
                    job.state = QUEUED
                    job.resumes += 1
                    self._enqueue(job)
                    self._record_event("job_resume", job)
                    self._checkpoint(job)
                    resumed += 1
            if resumed:
                self._ensure_runners()
                self._cond.notify_all()
            self._refresh_gauges()
        return resumed

    def stats(self) -> dict:
        """Table occupancy and policy — what ``/metrics`` exports as ``jobs``."""
        with self._lock:
            by_state: dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            return {
                "jobs": len(self._jobs),
                "by_state": by_state,
                "queued": sum(len(q) for q in self._queues.values()),
                "clients": sum(1 for q in self._queues.values() if q),
                "max_jobs": self.max_jobs,
                "max_per_client": self.max_per_client,
                "runners": len(self._threads),
                "durable": self.store is not None,
            }

    def close(self) -> None:
        """Stop admitting and drain the runners; running jobs checkpoint and
        stay ``running`` in the store so the next process resumes them."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        remove_hook = getattr(self.service, "remove_close_hook", None)
        if remove_hook is not None:
            remove_hook(self.close)
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=10.0)
        if self.store is not None:
            # Runners have drained (interrupted jobs are checkpointed
            # `running`); dropping the claims is what lets the next process
            # — or a sibling replica — resume them.
            self.store.release_all()

    # --------------------------------------------------------------- internals

    def _job(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(job_id)
        return job

    def _updates_payload(self, job: Job, since: int) -> dict:
        if since < 0:
            since = 0
        fresh = job.updates[since:] if since < job.seq else []
        return {
            "job_id": job.job_id,
            "state": job.state,
            "since": since,
            "next_since": job.seq,
            "updates": list(fresh),
        }

    def _make_room(self) -> None:
        """Evict the oldest finished jobs; a table of live jobs is full."""
        while len(self._jobs) >= self.max_jobs:
            finished = [j for j in self._jobs.values() if j.terminal]
            if not finished:
                live = len(self._jobs)
                raise JobTableFullError(live, self.max_jobs)
            oldest = min(finished, key=lambda j: j.finished_s or j.created_s)
            del self._jobs[oldest.job_id]
            if self.store is not None:
                self.store.delete(oldest.job_id)

    def _enqueue(self, job: Job) -> None:
        queue = self._queues.get(job.client)
        if queue is None:
            queue = self._queues[job.client] = deque()
            self._rr.append(job.client)
        queue.append(job.job_id)

    def _next_job(self) -> Job | None:
        """Round-robin over clients, FIFO within each (callers hold the lock)."""
        if not self._rr:
            return None
        for offset in range(len(self._rr)):
            client = self._rr[(self._rr_pos + offset) % len(self._rr)]
            queue = self._queues.get(client)
            if queue:
                self._rr_pos = (self._rr_pos + offset + 1) % len(self._rr)
                return self._jobs[queue.popleft()]
        return None

    def _ensure_runners(self) -> None:
        """Spawn runner threads lazily (callers hold the lock)."""
        while len(self._threads) < self.runners:
            thread = threading.Thread(
                target=self._run_loop,
                name=f"job-runner-{len(self._threads)}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _run_loop(self) -> None:
        while True:
            with self._cond:
                job = self._next_job()
                while job is None and not self._closed:
                    self._cond.wait(1.0)
                    job = self._next_job()
                if job is None:
                    return
                if job.terminal:  # cancelled while queued; nothing to run
                    continue
                job.state = RUNNING
                job.started_s = job.started_s or time.time()
                self._record_event("job_start", job)
                self._count_transition(RUNNING)
                self._refresh_gauges()
            try:
                self._run_job(job)
            except Exception as error:  # noqa: BLE001 - a failed job must
                # land in the table as `failed`, never kill the runner.
                with self._cond:
                    if not job.terminal:
                        job.error = f"{type(error).__name__}: {error}"
                        self._finish(job, FAILED)

    def _run_job(self, job: Job) -> None:
        """Drive one job's exploration session step by step."""
        dse_config = job.params.get("dse_config")
        if isinstance(dse_config, dict):
            from repro.dse.explorer import DSEConfig

            dse_config = DSEConfig(**dse_config)
        kwargs = {}
        if getattr(self.service, "resolver", None) is not None:
            # Pin the deployment plan: a fresh job (plan_seq None) snapshots
            # the live plan once here; a resumed job replays under the exact
            # plan seq it started with (0 pins "no plan"), so its trajectory
            # stays bitwise even if a new plan was published while it was
            # interrupted.  Services without a resolver never see the kwarg
            # (the manager's contract with stub services is unchanged).
            kwargs["plan_seq"] = job.plan_seq
        session = self.service.open_exploration(
            job.kernel,
            job.params.get("budget"),
            dse_config=dse_config,
            state=job.explorer_state,
            **kwargs,
        )
        with self._cond:
            job.explorer_state = session.state
            if job.plan_seq is None:
                session_seq = getattr(session, "plan_seq", None)
                job.plan_seq = session_seq if session_seq is not None else 0
            self._checkpoint(job)
        while not session.done:
            if job.cancel_event.is_set() or self._closed:
                break
            update = session.step()
            with self._cond:
                update["seq"] = job.seq + 1
                update["event"] = "iteration"
                job.updates.append(update)
                self._checkpoint(job)
                self._cond.notify_all()
            if self.step_delay_s > 0:
                time.sleep(self.step_delay_s)
        with self._cond:
            if job.cancel_event.is_set() and not session.done:
                self._finish(job, CANCELLED)
                return
            if self._closed and not session.done:
                # Graceful shutdown: leave the job `running` in the store so
                # the next process resumes it from the checkpoint.
                self._checkpoint(job)
                return
        report = session.report()
        with self._cond:
            job.result = explore_report_to_json(report)
            job.explorer_state = None
            self._finish(job, SUCCEEDED)

    def _finish(self, job: Job, state: str) -> None:
        """Terminal transition + final update (callers hold the lock)."""
        job.state = state
        job.finished_s = time.time()
        if state is not SUCCEEDED:
            job.explorer_state = None
        job.updates.append(
            {
                "seq": job.seq + 1,
                "event": "done",
                "state": state,
                **({"error": job.error} if job.error else {}),
            }
        )
        self._record_event("job_finish", job)
        self._count_transition(state)
        self._checkpoint(job)
        if self.store is not None:
            # Terminal jobs are read-only history; any process may list them.
            self.store.release(job.job_id)
        self._cond.notify_all()
        self._refresh_gauges()

    def _checkpoint(self, job: Job) -> None:
        if self.store is not None:
            self.store.save(job.job_id, job.to_store())

    # ----------------------------------------------------------- observability

    def _record_event(self, kind: str, job: Job) -> None:
        if self._obs is not None:
            try:
                self._obs.events.record(
                    kind,
                    job_id=job.job_id,
                    kernel=job.kernel,
                    client=job.client,
                    state=job.state,
                    seq=job.seq,
                )
            except Exception:  # noqa: BLE001 - observability is side-band
                pass

    def _count_transition(self, state: str) -> None:
        if self._transitions is not None:
            self._transitions.labels(state=state).inc()

    def _refresh_gauges(self) -> None:
        if self._gauge is None:
            return
        counts = {QUEUED: 0, RUNNING: 0, SUCCEEDED: 0, FAILED: 0, CANCELLED: 0}
        for job in self._jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        for state, count in counts.items():
            self._gauge.labels(state=state).set(count)


def jobs_dir_for(runtime) -> str | None:
    """The default durable jobs directory of one runtime config.

    ``runtime.jobs_dir`` wins; otherwise a ``jobs/`` subdirectory of the
    persistent cache dir (the cache's GC only scans ``samples/``, so the
    subtree is safe), and ``None`` — memory-only jobs — without either.
    """
    jobs_dir = getattr(runtime, "jobs_dir", None)
    if jobs_dir is not None:
        return str(jobs_dir)
    cache_dir = getattr(runtime, "persistent_cache_dir", None)
    if cache_dir is not None:
        import os.path

        return os.path.join(str(cache_dir), "jobs")
    return None


# re-exported next to the manager for the HTTP layer's convenience
__all__.append("jobs_dir_for")
__all__.append("kernel_of_job_id")
