"""Baseline GNN models of Table I: GCN, GraphSAGE, GraphConv and GINE.

Each model replaces only the convolution layer; pooling, metadata embedding
and the regression head are inherited from :class:`~repro.gnn.base.PowerGNN`
so that accuracy differences reflect the aggregation scheme (the comparison
the paper makes).  GCN and GraphSAGE use node features only; GraphConv uses a
scalar edge weight derived from the activity features; GINE injects projected
edge features into the messages — matching how these architectures consume
edge information in PyTorch Geometric.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.base import GraphBatch, PowerGNN, segment_mean
from repro.nn.init import glorot_uniform, zeros_init
from repro.nn.layers import MLP, Module, Parameter
from repro.nn.tensor import Tensor


class GCNConv(Module):
    """Kipf & Welling graph convolution with symmetric degree normalisation."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator, name: str = "gcn") -> None:
        super().__init__()
        self.weight = Parameter(glorot_uniform(in_dim, out_dim, rng), name=f"{name}.weight")
        self.bias = Parameter(zeros_init(out_dim), name=f"{name}.bias")

    def forward(self, node_embeddings: Tensor, batch: GraphBatch) -> Tensor:
        transformed = node_embeddings @ self.weight
        if batch.edge_index.shape[1] == 0:
            return (transformed + self.bias).relu()
        src, dst = batch.edge_index
        degrees = np.ones(batch.num_nodes)  # self-loops included in the degree
        np.add.at(degrees, dst, 1.0)
        norm = 1.0 / np.sqrt(degrees[src] * degrees[dst])
        messages = transformed.gather_rows(src) * Tensor(norm.reshape(-1, 1))
        aggregated = messages.segment_sum(dst, batch.num_nodes)
        self_term = transformed * Tensor((1.0 / degrees).reshape(-1, 1))
        return (aggregated + self_term + self.bias).relu()


class SAGEConv(Module):
    """GraphSAGE with mean aggregation."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator, name: str = "sage") -> None:
        super().__init__()
        self.self_weight = Parameter(glorot_uniform(in_dim, out_dim, rng), name=f"{name}.self")
        self.neighbor_weight = Parameter(
            glorot_uniform(in_dim, out_dim, rng), name=f"{name}.neigh"
        )
        self.bias = Parameter(zeros_init(out_dim), name=f"{name}.bias")

    def forward(self, node_embeddings: Tensor, batch: GraphBatch) -> Tensor:
        out = node_embeddings @ self.self_weight + self.bias
        if batch.edge_index.shape[1]:
            src, dst = batch.edge_index
            neighbors = segment_mean(
                node_embeddings.gather_rows(src), dst, batch.num_nodes
            )
            out = out + neighbors @ self.neighbor_weight
        return out.relu()


class GraphConvLayer(Module):
    """GraphConv (Morris et al.): sum aggregation with scalar edge weights."""

    def __init__(self, in_dim: int, out_dim: int, edge_dim: int, rng: np.random.Generator, name: str = "graphconv") -> None:
        super().__init__()
        self.self_weight = Parameter(glorot_uniform(in_dim, out_dim, rng), name=f"{name}.self")
        self.neighbor_weight = Parameter(
            glorot_uniform(in_dim, out_dim, rng), name=f"{name}.neigh"
        )
        self.bias = Parameter(zeros_init(out_dim), name=f"{name}.bias")
        self.edge_dim = edge_dim

    def forward(self, node_embeddings: Tensor, batch: GraphBatch) -> Tensor:
        out = node_embeddings @ self.self_weight + self.bias
        if batch.edge_index.shape[1]:
            src, dst = batch.edge_index
            messages = node_embeddings.gather_rows(src) @ self.neighbor_weight
            if self.edge_dim > 0 and batch.edge_features.shape[1] == self.edge_dim:
                # Scalar edge weight: mean of the activity features of the edge.
                weights = batch.edge_features.numpy().mean(axis=1, keepdims=True)
                messages = messages * Tensor(weights)
            out = out + messages.segment_sum(dst, batch.num_nodes)
        return out.relu()


class GINEConv(Module):
    """GINE (Hu et al.): injects projected edge features into GIN messages."""

    def __init__(self, in_dim: int, out_dim: int, edge_dim: int, rng: np.random.Generator, name: str = "gine") -> None:
        super().__init__()
        self.pre_weight = Parameter(glorot_uniform(in_dim, out_dim, rng), name=f"{name}.pre")
        self.edge_projection = Parameter(
            glorot_uniform(max(edge_dim, 1), out_dim, rng), name=f"{name}.edge"
        )
        self.epsilon = Parameter(np.zeros(1), name=f"{name}.eps")
        self.mlp = MLP([out_dim, out_dim, out_dim], rng, name=f"{name}.mlp")
        self.edge_dim = edge_dim

    def forward(self, node_embeddings: Tensor, batch: GraphBatch) -> Tensor:
        transformed = node_embeddings @ self.pre_weight
        aggregated: Tensor | None = None
        if batch.edge_index.shape[1]:
            src, dst = batch.edge_index
            messages = transformed.gather_rows(src)
            if self.edge_dim > 0 and batch.edge_features.shape[1] == self.edge_dim:
                messages = (messages + batch.edge_features @ self.edge_projection).relu()
            else:
                messages = messages.relu()
            aggregated = messages.segment_sum(dst, batch.num_nodes)
        center = transformed * (Tensor(np.ones(1)) + self.epsilon)
        combined = center if aggregated is None else center + aggregated
        return self.mlp(combined).relu()


class GCNModel(PowerGNN):
    """GCN baseline; operates on the symmetrised graph (GCN assumes undirected)."""

    def prepare_graph(self, graph):
        return super().prepare_graph(graph).undirected()

    def make_conv(self, in_dim, out_dim, rng, layer_index):
        return GCNConv(in_dim, out_dim, rng, name=f"gcn{layer_index}")


class GraphSAGEModel(PowerGNN):
    """GraphSAGE baseline (mean aggregator, node features only)."""

    def make_conv(self, in_dim, out_dim, rng, layer_index):
        return SAGEConv(in_dim, out_dim, rng, name=f"sage{layer_index}")


class GraphConvModel(PowerGNN):
    """GraphConv baseline (node features plus scalar edge weights)."""

    def make_conv(self, in_dim, out_dim, rng, layer_index):
        return GraphConvLayer(
            in_dim, out_dim, self.edge_feature_dim, rng, name=f"graphconv{layer_index}"
        )


class GINEModel(PowerGNN):
    """GINE baseline (node features plus projected edge features)."""

    def make_conv(self, in_dim, out_dim, rng, layer_index):
        return GINEConv(
            in_dim, out_dim, self.edge_feature_dim, rng, name=f"gine{layer_index}"
        )
