"""GNN models for power estimation.

:class:`~repro.gnn.hecgnn.HECGNN` is the paper's contribution: a heterogeneous
edge-centric GNN whose aggregation (Eq. 4/5) mirrors the dynamic power formula.
The node-centric baselines of Table I — GCN, GraphSAGE, GraphConv and GINE —
share the same overall architecture (three convolution layers, sum pooling
across layers, metadata embedding and MLP head) and differ only in their
neighbourhood-aggregation scheme, so comparisons isolate the aggregation
design exactly as the paper intends.
"""

from repro.gnn.config import GNNConfig
from repro.gnn.base import PowerGNN, GraphBatch
from repro.gnn.hecgnn import HECGNN, HECGNNConv
from repro.gnn.baseline_convs import GCNModel, GraphSAGEModel, GraphConvModel, GINEModel
from repro.gnn.trainer import Trainer, TrainingConfig, TrainingHistory
from repro.gnn.ensemble import EnsembleConfig, EnsembleRegressor

__all__ = [
    "GNNConfig",
    "PowerGNN",
    "GraphBatch",
    "HECGNN",
    "HECGNNConv",
    "GCNModel",
    "GraphSAGEModel",
    "GraphConvModel",
    "GINEModel",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "EnsembleConfig",
    "EnsembleRegressor",
]
