"""Model hyper-parameter configuration.

The paper's settings are three graph-convolution layers, hidden dimension 128,
dropout 0.2, batch size 128 and learning rate 5e-4 (Section IV).  The defaults
here use a smaller hidden dimension so the full leave-one-out evaluation runs
in CI-scale time; ``GNNConfig.paper()`` returns the published configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class GNNConfig:
    """Architecture and ablation switches shared by every GNN model."""

    hidden_dim: int = 48
    num_layers: int = 3
    dropout: float = 0.2
    #: Use the four-dimensional activity edge features in aggregation.
    use_edge_features: bool = True
    #: Keep edges directed; when False the graph is symmetrised before message passing.
    directed: bool = True
    #: Use relation-type-specific weight matrices (A->A, A->N, N->A, N->N).
    heterogeneous: bool = True
    #: Use the global metadata embedding branch.
    use_metadata: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.hidden_dim < 1:
            raise ValueError("hidden_dim must be positive")
        if self.num_layers < 1:
            raise ValueError("num_layers must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")

    @staticmethod
    def paper() -> "GNNConfig":
        """The hyper-parameters reported in the paper (Section IV)."""
        return GNNConfig(hidden_dim=128, num_layers=3, dropout=0.2)

    # Ablation variants of Table II -------------------------------------------------

    def without_edge_features(self) -> "GNNConfig":
        return replace(self, use_edge_features=False)

    def without_directionality(self) -> "GNNConfig":
        return replace(self, directed=False)

    def without_heterogeneity(self) -> "GNNConfig":
        return replace(self, heterogeneous=False)

    def without_metadata(self) -> "GNNConfig":
        return replace(self, use_metadata=False)

    def unoptimised(self) -> "GNNConfig":
        """The ``w/o opt.`` variant: none of the HEC-GNN optimisations."""
        return replace(
            self,
            use_edge_features=False,
            directed=False,
            heterogeneous=False,
            use_metadata=False,
        )
