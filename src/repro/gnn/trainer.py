"""Training loop for the power-estimation GNNs.

The paper trains with the MAPE regression loss, Adam, batch size 128, learning
rate 5e-4, 1200 epochs for total power and 2400 for dynamic power, with 20 %
of the training data held out for validation.  The trainer below implements
the same procedure with configurable (smaller) defaults and early selection of
the best-validation-epoch weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gnn.base import PowerGNN
from repro.graph.dataset import GraphSample
from repro.graph.hetero_graph import HeteroGraph
from repro.nn.losses import mape_loss
from repro.nn.optim import Adam
from repro.utils.metrics import mape
from repro.utils.rng import spawn_rng


@dataclass(frozen=True)
class TrainingConfig:
    """Optimisation hyper-parameters (paper values: lr 5e-4, batch 128, 1200/2400 epochs)."""

    epochs: int = 120
    batch_size: int = 32
    learning_rate: float = 5e-4
    weight_decay: float = 0.0
    max_grad_norm: float | None = 5.0
    target: str = "dynamic"
    validation_fraction: float = 0.2
    patience: int | None = None
    seed: int = 0
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.target not in ("total", "dynamic", "static"):
            raise ValueError(f"unknown training target {self.target!r}")
        if not 0.0 <= self.validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")

    @staticmethod
    def paper(target: str = "dynamic") -> "TrainingConfig":
        """The published training schedule."""
        epochs = 2400 if target == "dynamic" else 1200
        return TrainingConfig(epochs=epochs, batch_size=128, learning_rate=5e-4, target=target)


@dataclass
class TrainingHistory:
    """Per-epoch training / validation losses plus the selected epoch."""

    train_loss: list[float] = field(default_factory=list)
    validation_error: list[float] = field(default_factory=list)
    best_epoch: int = -1
    best_validation_error: float = float("inf")


class Trainer:
    """Fits a :class:`PowerGNN` on graph samples."""

    def __init__(self, config: TrainingConfig | None = None) -> None:
        self.config = config or TrainingConfig()

    # ------------------------------------------------------------------ fitting

    def fit(
        self,
        model: PowerGNN,
        samples: list[GraphSample],
        validation_samples: list[GraphSample] | None = None,
    ) -> TrainingHistory:
        """Train ``model`` in place and return the loss history."""
        if not samples:
            raise ValueError("cannot train on an empty sample list")
        config = self.config
        rng = spawn_rng(config.seed, "trainer")

        if validation_samples is None and config.validation_fraction > 0 and len(samples) >= 5:
            order = rng.permutation(len(samples))
            cut = max(1, int(round(len(samples) * config.validation_fraction)))
            validation_samples = [samples[i] for i in order[:cut]]
            samples = [samples[i] for i in order[cut:]]
        validation_samples = validation_samples or []

        optimizer = Adam(
            model.parameters(), lr=config.learning_rate, weight_decay=config.weight_decay
        )
        history = TrainingHistory()
        best_state: dict[str, np.ndarray] | None = None
        epochs_without_improvement = 0

        targets = np.array([s.target(config.target) for s in samples])
        model.train()
        for epoch in range(config.epochs):
            order = rng.permutation(len(samples))
            epoch_losses: list[float] = []
            for start in range(0, len(order), config.batch_size):
                batch_ids = order[start : start + config.batch_size]
                graphs = [samples[i].graph for i in batch_ids]
                batch_graph = HeteroGraph.batch_graphs(graphs)
                batch_targets = targets[batch_ids]

                optimizer.zero_grad()
                predictions = model(batch_graph)
                loss = mape_loss(predictions, batch_targets)
                loss.backward()
                if config.max_grad_norm is not None:
                    _clip_gradients(model, config.max_grad_norm)
                optimizer.step()
                epoch_losses.append(loss.item())

            history.train_loss.append(float(np.mean(epoch_losses)))

            if validation_samples:
                validation_error = self.evaluate(model, validation_samples)
                history.validation_error.append(validation_error)
                if validation_error < history.best_validation_error:
                    history.best_validation_error = validation_error
                    history.best_epoch = epoch
                    best_state = model.state_dict()
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                    if (
                        config.patience is not None
                        and epochs_without_improvement >= config.patience
                    ):
                        break
            if config.verbose and (epoch % 10 == 0 or epoch == config.epochs - 1):
                val = history.validation_error[-1] if history.validation_error else float("nan")
                print(
                    f"epoch {epoch:4d}  train MAPE {history.train_loss[-1] * 100:6.2f}%  "
                    f"val MAPE {val:6.2f}%"
                )

        if best_state is not None:
            model.load_state_dict(best_state)
        return history

    # ---------------------------------------------------------------- evaluate

    def evaluate(self, model: PowerGNN, samples: list[GraphSample]) -> float:
        """MAPE (in percent) of ``model`` on ``samples`` for the configured target."""
        if not samples:
            raise ValueError("cannot evaluate on an empty sample list")
        predictions = self.predict(model, samples)
        targets = np.array([s.target(self.config.target) for s in samples])
        return mape(targets, predictions)

    @staticmethod
    def predict(model: PowerGNN, samples: list[GraphSample]) -> np.ndarray:
        return model.predict([s.graph for s in samples])


def _clip_gradients(model: PowerGNN, max_norm: float) -> None:
    """Scale all gradients so their global L2 norm does not exceed ``max_norm``."""
    parameters = [p for p in model.parameters() if p.grad is not None]
    if not parameters:
        return
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in parameters)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for parameter in parameters:
            parameter.grad = parameter.grad * scale
