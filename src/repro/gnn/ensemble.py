"""Ensemble learning strategy of the paper.

Section III-B: "we perform 10-fold cross-validation together with three
different random seeds to generate different training and validation sets for
model generation, and average all the output of trained models to get the
final prediction results."  :class:`EnsembleRegressor` implements exactly that
scheme on top of any :class:`~repro.gnn.base.PowerGNN` subclass, with the fold
and seed counts configurable (the benchmark defaults use fewer members so the
full leave-one-out sweep stays fast; ``EnsembleConfig.paper()`` restores the
published setting).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.gnn.base import GraphBatch, PowerGNN, num_relations
from repro.gnn.config import GNNConfig
from repro.gnn.trainer import Trainer, TrainingConfig
from repro.graph.dataset import GraphDataset, GraphSample
from repro.graph.hetero_graph import HeteroGraph


@dataclass(frozen=True)
class EnsembleConfig:
    """Cross-validation folds and seeds of the ensemble."""

    folds: int = 3
    seeds: tuple[int, ...] = (0, 1)

    def __post_init__(self) -> None:
        if self.folds < 2:
            raise ValueError("the ensemble needs at least two folds")
        if not self.seeds:
            raise ValueError("the ensemble needs at least one seed")

    @staticmethod
    def paper() -> "EnsembleConfig":
        return EnsembleConfig(folds=10, seeds=(0, 1, 2))

    @property
    def num_members(self) -> int:
        return self.folds * len(self.seeds)


@dataclass
class EnsembleMember:
    """One trained (fold, seed) member of the ensemble."""

    model: PowerGNN
    fold: int
    seed: int
    validation_error: float


#: Backwards-compatible alias (the class used to be module-private).
_EnsembleMember = EnsembleMember


def stack_member_predictions(models, batch: GraphBatch) -> np.ndarray:
    """Stacked per-model predictions for one prepared batch, in list order.

    The single shard unit of batched ensemble prediction: the serial
    :meth:`EnsembleRegressor.predict_members` runs it over all members, and
    each pooled-forward worker (:func:`repro.runtime.pool.run_forward_task`)
    runs it over its contiguous member slice — so concatenating shard stacks
    in member order rebuilds the serial stack bit for bit *by shared code*,
    not by parallel maintenance.
    """
    return np.stack([model.predict_prepared(batch) for model in models])


class EnsembleRegressor:
    """K-fold x seeds ensemble over a GNN model family."""

    def __init__(
        self,
        model_factory: Callable[[GNNConfig], PowerGNN],
        model_config: GNNConfig,
        training_config: TrainingConfig,
        ensemble_config: EnsembleConfig | None = None,
    ) -> None:
        self.model_factory = model_factory
        self.model_config = model_config
        self.training_config = training_config
        self.ensemble_config = ensemble_config or EnsembleConfig()
        self.members: list[EnsembleMember] = []

    # ------------------------------------------------------------------ fitting

    def fit(self, samples: list[GraphSample]) -> "EnsembleRegressor":
        """Train every (fold, seed) member on its own training/validation split."""
        if len(samples) < self.ensemble_config.folds:
            raise ValueError("not enough samples for the requested number of folds")
        dataset = GraphDataset(list(samples))
        self.members = []
        for seed in self.ensemble_config.seeds:
            folds = dataset.kfold_indices(self.ensemble_config.folds, seed=seed)
            for fold_index, (train_ids, valid_ids) in enumerate(folds):
                member_model_config = replace(self.model_config, seed=seed * 1009 + fold_index)
                member_training_config = replace(
                    self.training_config,
                    seed=seed * 1009 + fold_index,
                    validation_fraction=0.0,
                )
                model = self.model_factory(member_model_config)
                trainer = Trainer(member_training_config)
                train_samples = [dataset[i] for i in train_ids]
                valid_samples = [dataset[i] for i in valid_ids]
                trainer.fit(model, train_samples, validation_samples=valid_samples)
                validation_error = trainer.evaluate(model, valid_samples)
                self.members.append(
                    EnsembleMember(
                        model=model,
                        fold=fold_index,
                        seed=seed,
                        validation_error=validation_error,
                    )
                )
        return self

    # ---------------------------------------------------------------- predicting

    def predict(self, samples: list[GraphSample]) -> np.ndarray:
        """Average the member predictions (the paper's final prediction)."""
        if not self.members:
            raise RuntimeError("the ensemble has not been fitted")
        graphs = [s.graph for s in samples]
        predictions = np.stack([member.model.predict(graphs) for member in self.members])
        return predictions.mean(axis=0)

    def predict_members(self, batch: GraphBatch) -> np.ndarray:
        """All members' predictions for one prepared batch, stacked in order.

        Runs :func:`stack_member_predictions` — the same shard unit the
        pooled forward's workers execute per member slice — over the full
        ensemble.  Every forward routes through the active compute backend.
        """
        if not self.members:
            raise RuntimeError("the ensemble has not been fitted")
        return stack_member_predictions(
            [member.model for member in self.members], batch
        )

    def iter_prepared_chunks(
        self, graphs: list[HeteroGraph], batch_size: int | None = None
    ):
        """Chunk, pack and ablation-prepare graphs exactly as the batched
        prediction path does, yielding ``(start, length, prepared_graph)``.

        The single source of truth for chunk boundaries and graph
        preparation: the serial :meth:`predict_batch` and the pooled forward
        (:class:`repro.runtime.pool.ForwardPool`) both consume this, which is
        what keeps their predictions bitwise-identical by construction
        instead of by parallel maintenance.
        """
        if not self.members:
            raise RuntimeError("the ensemble has not been fitted")
        chunk_size = len(graphs) if batch_size is None else max(1, batch_size)
        reference = self.members[0].model
        for start in range(0, len(graphs), chunk_size):
            chunk = graphs[start : start + chunk_size]
            yield start, len(chunk), reference.prepare_graph(HeteroGraph.pack(chunk))

    def predict_batch(
        self, samples: list[GraphSample], batch_size: int | None = None
    ) -> np.ndarray:
        """Batched ensemble prediction: one vectorised forward pass per member.

        Graphs are packed into a block-diagonal mega-graph which is *prepared*
        (ablation transforms) and wrapped into a :class:`GraphBatch` once, then
        shared by every member — all members are built from the same
        :class:`~repro.gnn.config.GNNConfig` (only the seed differs), so their
        graph transforms and relation bookkeeping are identical.
        """
        if not self.members:
            raise RuntimeError("the ensemble has not been fitted")
        if not samples:
            return np.zeros(0)
        graphs = [s.graph for s in samples]
        outputs = np.zeros(len(graphs))
        relations = num_relations(self.members[0].model.config)
        for start, length, prepared in self.iter_prepared_chunks(graphs, batch_size):
            batch = GraphBatch.from_graph(prepared, relations)
            outputs[start : start + length] = self.predict_members(batch).mean(axis=0)
        return outputs

    def validation_errors(self) -> list[float]:
        return [member.validation_error for member in self.members]
