"""HEC-GNN: the heterogeneous edge-centric convolution of the paper.

Eq. (4)/(5):

.. math::

    h_v^{(k)} = \\sigma\\Big( W_V^{(k)} h_v^{(k-1)}
        + \\sum_{r \\in R} \\sum_{u \\in N_v^r} W_r^{(k)} W_E^{(k)} e_{u,v,r} \\Big)

The aggregation is *edge-centric*: messages are built from the edge feature
vectors (which carry the switching activities α of Eq. 1), projected first by
a global edge weight ``W_E`` (fitting the common ``V²·f`` term) and then by a
relation-specific weight ``W_r`` (fitting the relation-specific interconnect
capacitance ``C_r``), and summed into the sink node — a learned analogue of
``P_dyn = Σ α_i C_i V² f``.

Ablation switches (Table II) are honoured here:

* ``use_edge_features=False`` falls back to aggregating the *source node
  embeddings* through the same weights (node-centric aggregation),
* ``heterogeneous=False`` uses a single relation weight,
* ``directed=False`` is handled by the base class, which symmetrises the graph.
"""

from __future__ import annotations

import numpy as np

from repro.backend import active_backend
from repro.gnn.base import (
    GraphBatch,
    PowerGNN,
    grouped_forward_enabled,
    num_relations,
)
from repro.gnn.config import GNNConfig
from repro.graph.hetero_graph import RELATION_TYPES
from repro.nn.init import glorot_uniform, zeros_init
from repro.nn.layers import Module, Parameter
from repro.nn.tensor import Tensor


class HECGNNConv(Module):
    """One heterogeneous edge-centric convolution layer."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        edge_dim: int,
        rng: np.random.Generator,
        config: GNNConfig,
        name: str = "hec",
    ) -> None:
        super().__init__()
        self.config = config
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.edge_dim = edge_dim
        # W_V: update of the node's own embedding from the previous layer.
        self.node_weight = Parameter(glorot_uniform(in_dim, out_dim, rng), name=f"{name}.W_V")
        self.bias = Parameter(zeros_init(out_dim), name=f"{name}.bias")
        # W_E: global edge projection shared by all relation types.
        message_in = edge_dim if config.use_edge_features else in_dim
        self.edge_weight = Parameter(
            glorot_uniform(max(message_in, 1), out_dim, rng), name=f"{name}.W_E"
        )
        # W_r: one weight matrix per relation type (or a single one).
        self.relation_weights = [
            Parameter(glorot_uniform(out_dim, out_dim, rng), name=f"{name}.W_r{r}")
            for r in range(num_relations(config))
        ]
        # Memoised (R, out_dim, out_dim) stack of the relation weights for the
        # grouped one-GEMM path; rebuilt whenever any member array is swapped
        # (load_state_dict / shared-memory rebinding replaces ``.data``).
        self._stacked_weights: tuple | None = None

    def _stacked_relation_weights(self) -> np.ndarray:
        """Relation weights stacked into one batched operand, identity-cached.

        The cache key is the identity of every member array, and the cached
        entry pins those arrays (so a freed array's id cannot be reused while
        the key still references it).  Identity-stability of the returned
        stack is what lets the f32 accelerator tier reuse its cast of the
        weights across layers, batches and ensemble members.
        """
        key = tuple(id(parameter.data) for parameter in self.relation_weights)
        cached = self._stacked_weights
        if cached is None or cached[0] != key:
            sources = tuple(parameter.data for parameter in self.relation_weights)
            cached = (key, sources, np.stack(sources))
            self._stacked_weights = cached
        return cached[2]

    def _forward_grouped(
        self, updated: Tensor, messages: Tensor, batch: GraphBatch, relations: int
    ) -> Tensor:
        """One-GEMM inference: gather → grouped matmul → grouped scatter-add.

        Replaces the per-relation Python loop with three backend calls over
        the batch's relation-sorted edge layout.  The layout's (relation,
        destination, edge-id) sort keeps each destination's accumulation
        chain in original edge order, so the result is bitwise-identical to
        the loop on bitwise backends; accelerator-tier backends (f32) may
        instead match within their advertised tolerance.
        """
        backend = active_backend()
        groups = batch.relation_groups(relations)
        sorted_messages = backend.gather_rows(messages.data, groups.order)
        projected = backend.grouped_matmul(
            sorted_messages, self._stacked_relation_weights(), groups.offsets
        )
        aggregated = backend.scatter_add_grouped(
            projected, groups.destinations, groups.offsets, batch.num_nodes
        )
        return updated.add_relu(Tensor(aggregated))

    def forward(self, node_embeddings: Tensor, batch: GraphBatch) -> Tensor:
        # Fused affine through the active compute backend (see repro.backend).
        updated = node_embeddings.linear(self.node_weight, self.bias)
        if batch.edge_index.shape[1] == 0:
            return updated.relu()

        if self.config.use_edge_features and self.edge_dim > 0:
            messages = batch.edge_features @ self.edge_weight
        else:
            source = node_embeddings.gather_rows(batch.edge_index[0])
            messages = source @ self.edge_weight

        relations = num_relations(self.config)
        if (
            grouped_forward_enabled()
            and not updated.requires_grad
            and not messages.requires_grad
        ):
            return self._forward_grouped(updated, messages, batch, relations)

        # Autograd path (and the ``REPRO_GROUPED_FORWARD=off`` escape hatch):
        # the historical per-relation loop, one projection + scatter per
        # relation type.  The grouped path above is bitwise-identical to it.
        aggregated: Tensor | None = None
        for relation in range(relations):
            edge_ids = batch.relation_edge_ids(relation, relations)
            if edge_ids.size == 0:
                continue
            if edge_ids.size == batch.num_edges:
                relation_messages = messages @ self.relation_weights[relation]
            else:
                relation_messages = (
                    messages.gather_rows(edge_ids) @ self.relation_weights[relation]
                )
            destinations = batch.relation_destinations(relation, relations)
            summed = relation_messages.segment_sum(destinations, batch.num_nodes)
            aggregated = summed if aggregated is None else aggregated + summed

        if aggregated is not None:
            # Fused add+ReLU: the update/aggregation sum feeds straight into
            # the activation, so the backend can run it as one kernel.
            return updated.add_relu(aggregated)
        return updated.relu()


class HECGNN(PowerGNN):
    """The full HEC-GNN power model (Fig. 3)."""

    def make_conv(
        self, in_dim: int, out_dim: int, rng: np.random.Generator, layer_index: int
    ) -> Module:
        return HECGNNConv(
            in_dim,
            out_dim,
            self.edge_feature_dim,
            rng,
            self.config,
            name=f"hec{layer_index}",
        )

    @property
    def relation_names(self) -> tuple[str, ...]:
        """The relation vocabulary this model distinguishes."""
        return RELATION_TYPES if self.config.heterogeneous else ("all",)
