"""Shared GNN architecture: convolution stack, pooling, metadata branch, head.

Fig. 3 of the paper: graph data pass through three HEC-GNN convolution layers;
node embeddings from *every* layer are sum-pooled into the graph embedding
(a skip-connection-style readout, Eq. 6); global HLS metadata are embedded by
a one-layer MLP; the two embeddings are concatenated and a two-layer MLP
produces the power estimate (Eq. 7).  The baseline GNN models reuse exactly
this skeleton and only substitute their own convolution, so the comparison in
Table I isolates the aggregation scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend import active_backend
from repro.gnn.config import GNNConfig
from repro.graph.hetero_graph import RELATION_TYPES, HeteroGraph
from repro.nn.layers import Dropout, Linear, MLP, Module, ReLU, Sequential
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import spawn_rng


@dataclass
class GraphBatch:
    """Numpy views of a batched :class:`HeteroGraph` plus tensor wrappers.

    The batch memoises the per-relation edge-id lists: graph structure is
    immutable during inference, so the ids computed by the first convolution
    layer of the first model are reused by every later layer — and, when a
    prepared batch is shared across ensemble members (see
    :meth:`PowerGNN.predict_prepared`), by every member.
    """

    node_features: Tensor
    edge_features: Tensor
    edge_index: np.ndarray
    edge_types: np.ndarray
    batch: np.ndarray
    metadata: Tensor
    num_nodes: int
    num_graphs: int
    _relation_edge_ids: dict[tuple[int, int], np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )
    _relation_destinations: dict[tuple[int, int], np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )

    @staticmethod
    def from_graph(graph: HeteroGraph) -> "GraphBatch":
        metadata = graph.metadata
        if metadata.ndim == 1:
            metadata = metadata.reshape(1, -1)
        return GraphBatch(
            node_features=Tensor(graph.node_features),
            edge_features=Tensor(graph.edge_features),
            edge_index=graph.edge_index,
            edge_types=graph.edge_types,
            batch=graph.batch,
            metadata=Tensor(metadata),
            num_nodes=graph.num_nodes,
            num_graphs=graph.num_graphs,
        )

    @property
    def num_edges(self) -> int:
        return int(self.edge_index.shape[1])

    def relation_edge_ids(self, relation: int, num_relations: int) -> np.ndarray:
        """Edge ids of one relation type, memoised for the batch's lifetime."""
        key = (relation, num_relations)
        ids = self._relation_edge_ids.get(key)
        if ids is None:
            if num_relations == 1:
                ids = np.arange(self.num_edges, dtype=np.int64)
            else:
                ids = np.nonzero(self.edge_types == relation)[0]
            self._relation_edge_ids[key] = ids
        return ids

    def relation_destinations(self, relation: int, num_relations: int) -> np.ndarray:
        """Destination node ids of one relation's edges, memoised like the ids.

        Every convolution layer of every ensemble member scatter-adds into
        the same destinations, so beyond saving the re-gather this keeps the
        index array *identity-stable* for the batch's lifetime — which is
        what lets identity-keyed backend caches (the optimized backend's
        scatter flat-index cache) hit across layers and members.
        """
        key = (relation, num_relations)
        destinations = self._relation_destinations.get(key)
        if destinations is None:
            edge_ids = self.relation_edge_ids(relation, num_relations)
            if edge_ids.size == self.num_edges:
                destinations = np.ascontiguousarray(self.edge_index[1], dtype=np.int64)
            else:
                destinations = self.edge_index[1][edge_ids].astype(np.int64, copy=False)
            self._relation_destinations[key] = destinations
        return destinations


class PowerGNN(Module):
    """Common skeleton of every power-estimation GNN."""

    def __init__(
        self,
        node_feature_dim: int,
        edge_feature_dim: int,
        metadata_dim: int,
        config: GNNConfig | None = None,
    ) -> None:
        super().__init__()
        self.config = config or GNNConfig()
        self.node_feature_dim = node_feature_dim
        self.edge_feature_dim = edge_feature_dim
        self.metadata_dim = metadata_dim
        rng = spawn_rng(self.config.seed, "model", type(self).__name__)
        self._rng = rng

        hidden = self.config.hidden_dim
        self.convs: list[Module] = []
        in_dim = node_feature_dim
        for layer in range(self.config.num_layers):
            self.convs.append(self.make_conv(in_dim, hidden, rng, layer))
            in_dim = hidden
        self.dropout = Dropout(self.config.dropout, rng)

        if self.config.use_metadata:
            # One fully connected layer followed by ReLU (Fig. 3).
            self.metadata_mlp: Module | None = Sequential(
                Linear(metadata_dim, hidden, rng, name="metadata"), ReLU()
            )
            head_in = hidden * 2
        else:
            self.metadata_mlp = None
            head_in = hidden
        # Two fully connected layers with ReLU in between (Eq. 7).
        self.head = MLP([head_in, hidden, 1], rng, name="head")
        # Damp the initial output scale: sum pooling over dozens of nodes makes
        # untrained predictions orders of magnitude larger than the power
        # targets (watts), which slows early MAPE optimisation considerably.
        final_linear = [m for m in self.head.modules() if isinstance(m, Linear)][-1]
        final_linear.weight.data = final_linear.weight.data * 0.02

    # ------------------------------------------------------------------ hooks

    def make_conv(
        self, in_dim: int, out_dim: int, rng: np.random.Generator, layer_index: int
    ) -> Module:  # pragma: no cover - interface
        """Build one convolution layer; implemented by each model."""
        raise NotImplementedError

    # ---------------------------------------------------------------- forward

    def prepare_graph(self, graph: HeteroGraph) -> HeteroGraph:
        """Apply config-driven graph transformations (ablation switches)."""
        prepared = graph
        if not self.config.directed:
            prepared = prepared.undirected()
        if not self.config.heterogeneous:
            prepared = prepared.homogeneous()
        return prepared

    def forward(self, graph: HeteroGraph) -> Tensor:
        """Predict power for each graph in the (possibly batched) input."""
        return self.forward_batch(GraphBatch.from_graph(self.prepare_graph(graph)))

    def forward_batch(self, batch: GraphBatch) -> Tensor:
        """Forward pass on an already prepared :class:`GraphBatch`.

        Callers that reuse one batch across several models (ensemble members
        share identical graph transforms) can build it once with
        :meth:`prepare_graph` + :meth:`GraphBatch.from_graph` and amortise the
        batching and relation-bookkeeping cost.
        """
        embeddings = batch.node_features
        pooled_layers: list[Tensor] = []
        for conv in self.convs:
            embeddings = conv(embeddings, batch)
            embeddings = self.dropout(embeddings)
            pooled_layers.append(
                embeddings.segment_sum(batch.batch, batch.num_graphs)
            )
        # Eq. 6: sum the pooled embeddings of every convolution layer.
        graph_embedding = pooled_layers[0]
        for pooled in pooled_layers[1:]:
            graph_embedding = graph_embedding + pooled

        if self.metadata_mlp is not None:
            metadata_embedding = self.metadata_mlp(batch.metadata)
            holistic = graph_embedding.concat(metadata_embedding, axis=1)
        else:
            holistic = graph_embedding
        prediction = self.head(holistic)
        return prediction.reshape(-1)

    # ---------------------------------------------------------------- predict

    def predict(
        self, graphs: list[HeteroGraph], batch_size: int | None = None
    ) -> np.ndarray:
        """Inference helper: predictions for a list of graphs, without autograd.

        With ``batch_size=None`` every graph runs through its own forward pass
        (the historical per-sample loop).  With a batch size, graphs are packed
        into block-diagonal mega-graphs of up to ``batch_size`` members and the
        whole pack runs one vectorised forward pass, which is substantially
        faster for small graphs while producing identical predictions.
        """
        self.eval()
        backend = active_backend()
        outputs = []
        with no_grad():
            if batch_size is None:
                for graph in graphs:
                    # One workspace arena per forward pass; the arena's
                    # buffers recycle at scope exit, so the result is copied
                    # out (np.array) before the scope closes.
                    with backend.forward_scope():
                        outputs.append(
                            np.array(self.forward(graph).numpy()).reshape(-1)
                        )
            else:
                if batch_size < 1:
                    raise ValueError("batch_size must be >= 1")
                for start in range(0, len(graphs), batch_size):
                    packed = HeteroGraph.pack(graphs[start : start + batch_size])
                    with backend.forward_scope():
                        outputs.append(
                            np.array(self.forward(packed).numpy()).reshape(-1)
                        )
        self.train()
        return np.concatenate(outputs) if outputs else np.zeros(0)

    def predict_prepared(self, batch: GraphBatch) -> np.ndarray:
        """Predictions for an already prepared batch (no autograd, eval mode).

        Runs inside one backend forward scope: pooling backends serve the
        whole pass from reused workspaces, so the returned vector is copied
        out of the arena before the scope recycles it.
        """
        self.eval()
        with no_grad(), active_backend().forward_scope():
            predictions = np.array(self.forward_batch(batch).numpy()).reshape(-1)
        self.train()
        return predictions


def segment_mean(values: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Mean-aggregation helper shared by GraphSAGE.

    At inference (no gradient required through ``values``) the whole mean
    runs as the backend's fused ``segment_mean`` kernel; under autograd it
    composes the recorded segment-sum with a backend ``bincount`` for the
    occurrence counts (same integral counts as the historical ``np.add.at``
    accumulation, computed in one C pass).  Both spellings are the same
    arithmetic, so the results are bitwise-identical.
    """
    backend = active_backend()
    if not values.requires_grad:
        return Tensor(backend.segment_mean(values.data, index, num_segments))
    sums = values.segment_sum(index, num_segments)
    counts = backend.bincount(index, minlength=num_segments).astype(np.float64)
    counts[counts == 0] = 1.0
    return sums * Tensor((1.0 / counts).reshape(-1, 1))


def num_relations(config: GNNConfig) -> int:
    return len(RELATION_TYPES) if config.heterogeneous else 1
