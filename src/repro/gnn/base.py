"""Shared GNN architecture: convolution stack, pooling, metadata branch, head.

Fig. 3 of the paper: graph data pass through three HEC-GNN convolution layers;
node embeddings from *every* layer are sum-pooled into the graph embedding
(a skip-connection-style readout, Eq. 6); global HLS metadata are embedded by
a one-layer MLP; the two embeddings are concatenated and a two-layer MLP
produces the power estimate (Eq. 7).  The baseline GNN models reuse exactly
this skeleton and only substitute their own convolution, so the comparison in
Table I isolates the aggregation scheme.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.backend import active_backend
from repro.gnn.config import GNNConfig
from repro.graph.hetero_graph import RELATION_TYPES, HeteroGraph
from repro.nn.layers import Dropout, Linear, MLP, Module, ReLU, Sequential
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import spawn_rng

#: Environment switch for the grouped one-GEMM inference path.  Defaults to
#: on (``auto``); set to ``off`` / ``0`` / ``false`` to force the historical
#: per-relation loop (e.g. to bisect a suspected grouped-kernel issue).
GROUPED_ENV_VAR = "REPRO_GROUPED_FORWARD"


def grouped_forward_enabled() -> bool:
    """Whether the grouped-relation forward path may be used at inference."""
    value = os.environ.get(GROUPED_ENV_VAR, "auto").strip().lower()
    return value not in ("off", "0", "false", "no")


#: Environment override for the inference forward's segment size (in nodes).
SEGMENT_ENV_VAR = "REPRO_FORWARD_SEGMENT_NODES"
#: Default target nodes per forward segment.  Large enough that every GEMM
#: in a segment's forward runs at near-peak BLAS efficiency, small enough
#: that huge packed batches decompose into many shardable units.
DEFAULT_SEGMENT_NODES = 4096


def forward_segment_nodes() -> int:
    """Target nodes per inference forward segment (env-overridable)."""
    raw = os.environ.get(SEGMENT_ENV_VAR, "")
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_SEGMENT_NODES
    return max(1, value)


def segment_boundaries(node_counts: np.ndarray, target_nodes: int) -> np.ndarray:
    """Graph-aligned segment boundaries for a packed batch's forward.

    Greedy: accumulate whole graphs until the running node count reaches
    ``target_nodes``, close the segment, reset the accumulator.  The rule is
    *Markovian* — the state resets at every boundary — so re-segmenting any
    sub-batch that starts and ends on boundaries reproduces exactly the
    interior boundaries of the full batch.  That suffix property is what
    lets the pooled forward hand whole-segment unions to workers and still
    replay the serial path's per-segment computations bit for bit: BLAS
    GEMM results depend on the matrix shapes (row slices of a large matmul
    are *not* bitwise-reproducible by a smaller matmul), so bitwise
    equality across serial and sharded execution requires that both sides
    run the exact same per-segment shapes — which sharing this decomposition
    guarantees.
    """
    boundaries = [0]
    accumulated = 0
    for graph_id, count in enumerate(node_counts):
        accumulated += int(count)
        if accumulated >= target_nodes:
            boundaries.append(graph_id + 1)
            accumulated = 0
    if boundaries[-1] != len(node_counts):
        boundaries.append(len(node_counts))
    return np.asarray(boundaries, dtype=np.int64)


@dataclass(frozen=True)
class RelationGroups:
    """Relation-sorted edge layout for the grouped one-GEMM forward.

    ``order`` permutes edges into relation-major order (stable by relation,
    then destination, then original edge id — the destination/edge-id tie
    break keeps every destination's accumulation chain in original edge
    order, which is what makes the grouped scatter bitwise-identical to the
    historical per-relation loop).  ``offsets`` is the ``(R + 1,)`` cumulative
    relation histogram delimiting each relation's contiguous block, and
    ``destinations`` is the destination node id of each edge *in sorted
    order*.  All three arrays are identity-stable for the batch's lifetime,
    so identity-keyed backend caches (the optimized backend's grouped CSR
    operators) hit across layers and ensemble members.
    """

    order: np.ndarray
    offsets: np.ndarray
    destinations: np.ndarray


@dataclass
class GraphBatch:
    """Numpy views of a batched :class:`HeteroGraph` plus tensor wrappers.

    The batch memoises the per-relation edge-id lists: graph structure is
    immutable during inference, so the ids computed by the first convolution
    layer of the first model are reused by every later layer — and, when a
    prepared batch is shared across ensemble members (see
    :meth:`PowerGNN.predict_prepared`), by every member.
    """

    node_features: Tensor
    edge_features: Tensor
    edge_index: np.ndarray
    edge_types: np.ndarray
    batch: np.ndarray
    metadata: Tensor
    num_nodes: int
    num_graphs: int
    _relation_edge_ids: dict[tuple[int, int], np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )
    _relation_destinations: dict[tuple[int, int], np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )
    _relation_groups: dict[int, RelationGroups] = field(
        default_factory=dict, repr=False, compare=False
    )
    _pool_offsets: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )
    _graph_segments: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )
    _segment_slices: tuple | None = field(default=None, repr=False, compare=False)

    @staticmethod
    def from_graph(
        graph: HeteroGraph, num_relations: int | None = None
    ) -> "GraphBatch":
        """Wrap a (possibly packed) graph; optionally precompute bookkeeping.

        With ``num_relations`` given, the relation layout (grouped order,
        per-relation edge ids and destinations, pooling offsets) is
        materialised eagerly, so the returned batch can be shared across
        threads or serialised structurally without lazy-init races.
        """
        metadata = graph.metadata
        if metadata.ndim == 1:
            metadata = metadata.reshape(1, -1)
        batch = GraphBatch(
            node_features=Tensor(graph.node_features),
            edge_features=Tensor(graph.edge_features),
            edge_index=graph.edge_index,
            edge_types=graph.edge_types,
            batch=np.ascontiguousarray(graph.batch, dtype=np.int64),
            metadata=Tensor(metadata),
            num_nodes=graph.num_nodes,
            num_graphs=graph.num_graphs,
        )
        if num_relations is not None:
            batch.precompute(num_relations)
        return batch

    @property
    def num_edges(self) -> int:
        return int(self.edge_index.shape[1])

    def relation_edge_ids(self, relation: int, num_relations: int) -> np.ndarray:
        """Edge ids of one relation type, memoised for the batch's lifetime."""
        key = (relation, num_relations)
        ids = self._relation_edge_ids.get(key)
        if ids is None:
            if num_relations == 1:
                ids = np.arange(self.num_edges, dtype=np.int64)
            else:
                ids = np.nonzero(self.edge_types == relation)[0]
            self._relation_edge_ids[key] = ids
        return ids

    def relation_destinations(self, relation: int, num_relations: int) -> np.ndarray:
        """Destination node ids of one relation's edges, memoised like the ids.

        Every convolution layer of every ensemble member scatter-adds into
        the same destinations, so beyond saving the re-gather this keeps the
        index array *identity-stable* for the batch's lifetime — which is
        what lets identity-keyed backend caches (the optimized backend's
        scatter flat-index cache) hit across layers and members.
        """
        key = (relation, num_relations)
        destinations = self._relation_destinations.get(key)
        if destinations is None:
            edge_ids = self.relation_edge_ids(relation, num_relations)
            if edge_ids.size == self.num_edges:
                destinations = np.ascontiguousarray(self.edge_index[1], dtype=np.int64)
            else:
                destinations = self.edge_index[1][edge_ids].astype(np.int64, copy=False)
            self._relation_destinations[key] = destinations
        return destinations

    def relation_groups(self, num_relations: int) -> RelationGroups:
        """Relation-sorted edge layout, memoised for the batch's lifetime.

        Built once per (batch, relation count): a stable lexicographic sort
        by (relation, destination, edge id) plus the cumulative relation
        histogram.  See :class:`RelationGroups` for why this particular sort
        keeps the grouped kernels bitwise-identical to the per-relation loop.
        """
        groups = self._relation_groups.get(num_relations)
        if groups is None:
            destinations = np.ascontiguousarray(self.edge_index[1], dtype=np.int64)
            if num_relations == 1:
                relations = np.zeros(self.num_edges, dtype=np.int64)
            else:
                relations = np.asarray(self.edge_types, dtype=np.int64)
            order = np.lexsort((np.arange(self.num_edges), destinations, relations))
            counts = np.bincount(relations, minlength=num_relations)
            offsets = np.zeros(num_relations + 1, dtype=np.int64)
            np.cumsum(counts[:num_relations], out=offsets[1:])
            groups = RelationGroups(
                order=order,
                offsets=offsets,
                destinations=destinations[order],
            )
            self._relation_groups[num_relations] = groups
        return groups

    @property
    def pool_offsets(self) -> np.ndarray:
        """Single-group offsets ``[0, num_nodes]`` for grouped sum-pooling.

        Identity-stable like the relation bookkeeping, so the backend's
        grouped-scatter operator cache is hit by every layer and member that
        pools this batch.
        """
        if self._pool_offsets is None:
            self._pool_offsets = np.array([0, self.num_nodes], dtype=np.int64)
        return self._pool_offsets

    def graph_segments(self) -> np.ndarray:
        """Graph-aligned forward segment boundaries, memoised.

        ``(S + 1,)`` cumulative graph indices delimiting the deterministic
        segments the inference forward runs over (see
        :func:`segment_boundaries`).  A batch below the segment size yields
        the trivial ``[0, num_graphs]`` — one segment, identical to the
        historical whole-pack forward.
        """
        if self._graph_segments is None:
            counts = np.bincount(self.batch, minlength=self.num_graphs)
            self._graph_segments = segment_boundaries(
                counts, forward_segment_nodes()
            )
        return self._graph_segments

    def slice_graphs(self, start: int, stop: int) -> "GraphBatch":
        """Self-contained sub-batch of the contiguous graph range [start, stop).

        Node rows are contiguous in pack order so they slice as views; edges
        are selected by their graph membership (the ``w/o dir.`` ablation
        appends reverse edges at the tail, so edge rows are *not* guaranteed
        graph-contiguous) and keep their original relative order, which is
        what keeps every destination's scatter accumulation chain identical
        to the full batch's.  Edge and graph indices are rebased to the
        slice's origin.  The full range returns ``self`` (shared memo dicts).
        """
        if start == 0 and stop == self.num_graphs:
            return self
        node_bounds = np.searchsorted(self.batch, [start, stop], side="left")
        node_lo, node_hi = int(node_bounds[0]), int(node_bounds[1])
        if self.num_edges:
            edge_graphs = self.batch[self.edge_index[0]]
            edge_ids = np.flatnonzero((edge_graphs >= start) & (edge_graphs < stop))
        else:
            edge_ids = np.zeros(0, dtype=np.int64)
        if edge_ids.size and int(edge_ids[-1]) - int(edge_ids[0]) + 1 == edge_ids.size:
            # Contiguous edge range (the common directed-pack layout):
            # slice views instead of fancy-index copies.
            edge_sel: slice | np.ndarray = slice(int(edge_ids[0]), int(edge_ids[-1]) + 1)
        else:
            edge_sel = edge_ids
        edge_index = np.ascontiguousarray(
            self.edge_index[:, edge_sel], dtype=np.int64
        ) - np.int64(node_lo)
        graph_ids = np.ascontiguousarray(self.batch[node_lo:node_hi]) - np.int64(start)
        return GraphBatch(
            node_features=Tensor(self.node_features.data[node_lo:node_hi]),
            edge_features=Tensor(self.edge_features.data[edge_sel]),
            edge_index=edge_index,
            edge_types=np.ascontiguousarray(self.edge_types[edge_sel], dtype=np.int64),
            batch=graph_ids,
            metadata=Tensor(self.metadata.data[start:stop]),
            num_nodes=node_hi - node_lo,
            num_graphs=stop - start,
        )

    def segment_batches(self) -> tuple:
        """The forward-segment sub-batches, memoised for the batch's lifetime.

        Single-segment batches return ``(self,)`` so small packs keep the
        historical whole-pack forward (and its memoised bookkeeping) with
        zero slicing overhead.  Memoising the slices means every ensemble
        member forwarding this batch reuses the same sub-batch objects —
        and therefore the same relation bookkeeping and identity-keyed
        backend operator caches.
        """
        if self._segment_slices is None:
            boundaries = self.graph_segments()
            if len(boundaries) <= 2:
                self._segment_slices = (self,)
            else:
                self._segment_slices = tuple(
                    self.slice_graphs(int(lo), int(hi))
                    for lo, hi in zip(boundaries[:-1], boundaries[1:])
                )
        return self._segment_slices

    def precompute(self, num_relations: int) -> "GraphBatch":
        """Eagerly materialise all relation bookkeeping (thread-safe reads).

        After this, every lazily-memoised structure is populated — including
        the forward segments and their own relation bookkeeping — so
        concurrent readers (pooled-forward workers sharing one attached
        batch) only ever *read* the memo dicts.
        """
        self.relation_groups(num_relations)
        self.pool_offsets
        for relation in range(num_relations):
            self.relation_edge_ids(relation, num_relations)
            self.relation_destinations(relation, num_relations)
        for segment in self.segment_batches():
            if segment is not self:
                segment.precompute(num_relations)
        return self


class PowerGNN(Module):
    """Common skeleton of every power-estimation GNN."""

    def __init__(
        self,
        node_feature_dim: int,
        edge_feature_dim: int,
        metadata_dim: int,
        config: GNNConfig | None = None,
    ) -> None:
        super().__init__()
        self.config = config or GNNConfig()
        self.node_feature_dim = node_feature_dim
        self.edge_feature_dim = edge_feature_dim
        self.metadata_dim = metadata_dim
        rng = spawn_rng(self.config.seed, "model", type(self).__name__)
        self._rng = rng

        hidden = self.config.hidden_dim
        self.convs: list[Module] = []
        in_dim = node_feature_dim
        for layer in range(self.config.num_layers):
            self.convs.append(self.make_conv(in_dim, hidden, rng, layer))
            in_dim = hidden
        self.dropout = Dropout(self.config.dropout, rng)

        if self.config.use_metadata:
            # One fully connected layer followed by ReLU (Fig. 3).
            self.metadata_mlp: Module | None = Sequential(
                Linear(metadata_dim, hidden, rng, name="metadata"), ReLU()
            )
            head_in = hidden * 2
        else:
            self.metadata_mlp = None
            head_in = hidden
        # Two fully connected layers with ReLU in between (Eq. 7).
        self.head = MLP([head_in, hidden, 1], rng, name="head")
        # Damp the initial output scale: sum pooling over dozens of nodes makes
        # untrained predictions orders of magnitude larger than the power
        # targets (watts), which slows early MAPE optimisation considerably.
        final_linear = [m for m in self.head.modules() if isinstance(m, Linear)][-1]
        final_linear.weight.data = final_linear.weight.data * 0.02

    # ------------------------------------------------------------------ hooks

    def make_conv(
        self, in_dim: int, out_dim: int, rng: np.random.Generator, layer_index: int
    ) -> Module:  # pragma: no cover - interface
        """Build one convolution layer; implemented by each model."""
        raise NotImplementedError

    # ---------------------------------------------------------------- forward

    def prepare_graph(self, graph: HeteroGraph) -> HeteroGraph:
        """Apply config-driven graph transformations (ablation switches)."""
        prepared = graph
        if not self.config.directed:
            prepared = prepared.undirected()
        if not self.config.heterogeneous:
            prepared = prepared.homogeneous()
        return prepared

    def forward(self, graph: HeteroGraph) -> Tensor:
        """Predict power for each graph in the (possibly batched) input."""
        return self.forward_batch(
            GraphBatch.from_graph(
                self.prepare_graph(graph), num_relations(self.config)
            )
        )

    def forward_batch(self, batch: GraphBatch) -> Tensor:
        """Forward pass on an already prepared :class:`GraphBatch`.

        Callers that reuse one batch across several models (ensemble members
        share identical graph transforms) can build it once with
        :meth:`prepare_graph` + :meth:`GraphBatch.from_graph` and amortise the
        batching and relation-bookkeeping cost.
        """
        backend = active_backend()
        grouped = grouped_forward_enabled()
        embeddings = batch.node_features
        pooled_layers: list[Tensor] = []
        for conv in self.convs:
            embeddings = conv(embeddings, batch)
            embeddings = self.dropout(embeddings)
            if grouped and not embeddings.requires_grad:
                # Inference-only grouped pooling: one cached sparse operator
                # per batch instead of a fresh scatter per layer and member.
                # Bitwise-identical to ``segment_sum`` (single group).
                pooled_layers.append(
                    Tensor(
                        backend.scatter_add_grouped(
                            embeddings.data,
                            batch.batch,
                            batch.pool_offsets,
                            batch.num_graphs,
                        )
                    )
                )
            else:
                pooled_layers.append(
                    embeddings.segment_sum(batch.batch, batch.num_graphs)
                )
        # Eq. 6: sum the pooled embeddings of every convolution layer.
        graph_embedding = pooled_layers[0]
        for pooled in pooled_layers[1:]:
            graph_embedding = graph_embedding + pooled

        if self.metadata_mlp is not None:
            metadata_embedding = self.metadata_mlp(batch.metadata)
            holistic = graph_embedding.concat(metadata_embedding, axis=1)
        else:
            holistic = graph_embedding
        prediction = self.head(holistic)
        return prediction.reshape(-1)

    # ---------------------------------------------------------------- predict

    def predict(
        self, graphs: list[HeteroGraph], batch_size: int | None = None
    ) -> np.ndarray:
        """Inference helper: predictions for a list of graphs, without autograd.

        With ``batch_size=None`` every graph runs through its own forward pass
        (the historical per-sample loop).  With a batch size, graphs are packed
        into block-diagonal mega-graphs of up to ``batch_size`` members and the
        whole pack runs one vectorised forward pass, which is substantially
        faster for small graphs while producing identical predictions.
        """
        self.eval()
        backend = active_backend()
        outputs = []
        with no_grad():
            if batch_size is None:
                for graph in graphs:
                    # One workspace arena per forward pass; the arena's
                    # buffers recycle at scope exit, so the result is copied
                    # out (np.array) before the scope closes.
                    with backend.forward_scope():
                        outputs.append(
                            np.array(self.forward(graph).numpy()).reshape(-1)
                        )
            else:
                if batch_size < 1:
                    raise ValueError("batch_size must be >= 1")
                for start in range(0, len(graphs), batch_size):
                    packed = HeteroGraph.pack(graphs[start : start + batch_size])
                    batch = GraphBatch.from_graph(self.prepare_graph(packed))
                    with backend.forward_scope():
                        outputs.append(self._forward_segmented(batch))
        self.train()
        return np.concatenate(outputs) if outputs else np.zeros(0)

    def _forward_segmented(self, batch: GraphBatch) -> np.ndarray:
        """Inference forward over the batch's deterministic segments.

        Every packed inference forward — serial or pooled — runs segment by
        segment (:meth:`GraphBatch.segment_batches`) and concatenates, so
        the GEMM shapes the BLAS sees are a pure function of the batch's
        per-graph node counts, never of how the batch was chunked or
        sharded.  That is the property that makes graph-axis-sharded pooled
        prediction bitwise-identical to the serial path: BLAS kernels pick
        shape-dependent blocking, so only identical per-segment shapes give
        identical bits.  Callers own eval/no-grad mode and the backend
        forward scope; each segment's output is copied out of the scope's
        arena before the next segment recycles it.
        """
        parts = [
            np.array(self.forward_batch(segment).numpy()).reshape(-1)
            for segment in batch.segment_batches()
        ]
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def predict_prepared(self, batch: GraphBatch) -> np.ndarray:
        """Predictions for an already prepared batch (no autograd, eval mode).

        Runs inside one backend forward scope: pooling backends serve the
        whole pass from reused workspaces, so the returned vector is copied
        out of the arena before the scope recycles it.  The forward itself
        is segmented (see :meth:`_forward_segmented`), which is what keeps
        batched prediction bitwise-reproducible under graph-axis sharding.
        """
        self.eval()
        with no_grad(), active_backend().forward_scope():
            predictions = self._forward_segmented(batch)
        self.train()
        return predictions


def segment_mean(values: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Mean-aggregation helper shared by GraphSAGE.

    At inference (no gradient required through ``values``) the whole mean
    runs as the backend's fused ``segment_mean`` kernel; under autograd it
    composes the recorded segment-sum with a backend ``bincount`` for the
    occurrence counts (same integral counts as the historical ``np.add.at``
    accumulation, computed in one C pass).  Both spellings are the same
    arithmetic, so the results are bitwise-identical.
    """
    backend = active_backend()
    if not values.requires_grad:
        return Tensor(backend.segment_mean(values.data, index, num_segments))
    sums = values.segment_sum(index, num_segments)
    counts = backend.bincount(index, minlength=num_segments).astype(np.float64)
    counts[counts == 0] = 1.0
    return sums * Tensor((1.0 / counts).reshape(-1, 1))


def num_relations(config: GNNConfig) -> int:
    return len(RELATION_TYPES) if config.heterogeneous else 1
