"""Shared GNN architecture: convolution stack, pooling, metadata branch, head.

Fig. 3 of the paper: graph data pass through three HEC-GNN convolution layers;
node embeddings from *every* layer are sum-pooled into the graph embedding
(a skip-connection-style readout, Eq. 6); global HLS metadata are embedded by
a one-layer MLP; the two embeddings are concatenated and a two-layer MLP
produces the power estimate (Eq. 7).  The baseline GNN models reuse exactly
this skeleton and only substitute their own convolution, so the comparison in
Table I isolates the aggregation scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gnn.config import GNNConfig
from repro.graph.hetero_graph import RELATION_TYPES, HeteroGraph
from repro.nn.layers import Dropout, Linear, MLP, Module, ReLU, Sequential
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import spawn_rng


@dataclass
class GraphBatch:
    """Numpy views of a batched :class:`HeteroGraph` plus tensor wrappers."""

    node_features: Tensor
    edge_features: Tensor
    edge_index: np.ndarray
    edge_types: np.ndarray
    batch: np.ndarray
    metadata: Tensor
    num_nodes: int
    num_graphs: int

    @staticmethod
    def from_graph(graph: HeteroGraph) -> "GraphBatch":
        metadata = graph.metadata
        if metadata.ndim == 1:
            metadata = metadata.reshape(1, -1)
        return GraphBatch(
            node_features=Tensor(graph.node_features),
            edge_features=Tensor(graph.edge_features),
            edge_index=graph.edge_index,
            edge_types=graph.edge_types,
            batch=graph.batch,
            metadata=Tensor(metadata),
            num_nodes=graph.num_nodes,
            num_graphs=graph.num_graphs,
        )


class PowerGNN(Module):
    """Common skeleton of every power-estimation GNN."""

    def __init__(
        self,
        node_feature_dim: int,
        edge_feature_dim: int,
        metadata_dim: int,
        config: GNNConfig | None = None,
    ) -> None:
        super().__init__()
        self.config = config or GNNConfig()
        self.node_feature_dim = node_feature_dim
        self.edge_feature_dim = edge_feature_dim
        self.metadata_dim = metadata_dim
        rng = spawn_rng(self.config.seed, "model", type(self).__name__)
        self._rng = rng

        hidden = self.config.hidden_dim
        self.convs: list[Module] = []
        in_dim = node_feature_dim
        for layer in range(self.config.num_layers):
            self.convs.append(self.make_conv(in_dim, hidden, rng, layer))
            in_dim = hidden
        self.dropout = Dropout(self.config.dropout, rng)

        if self.config.use_metadata:
            # One fully connected layer followed by ReLU (Fig. 3).
            self.metadata_mlp: Module | None = Sequential(
                Linear(metadata_dim, hidden, rng, name="metadata"), ReLU()
            )
            head_in = hidden * 2
        else:
            self.metadata_mlp = None
            head_in = hidden
        # Two fully connected layers with ReLU in between (Eq. 7).
        self.head = MLP([head_in, hidden, 1], rng, name="head")
        # Damp the initial output scale: sum pooling over dozens of nodes makes
        # untrained predictions orders of magnitude larger than the power
        # targets (watts), which slows early MAPE optimisation considerably.
        final_linear = [m for m in self.head.modules() if isinstance(m, Linear)][-1]
        final_linear.weight.data = final_linear.weight.data * 0.02

    # ------------------------------------------------------------------ hooks

    def make_conv(
        self, in_dim: int, out_dim: int, rng: np.random.Generator, layer_index: int
    ) -> Module:  # pragma: no cover - interface
        """Build one convolution layer; implemented by each model."""
        raise NotImplementedError

    # ---------------------------------------------------------------- forward

    def prepare_graph(self, graph: HeteroGraph) -> HeteroGraph:
        """Apply config-driven graph transformations (ablation switches)."""
        prepared = graph
        if not self.config.directed:
            prepared = prepared.undirected()
        if not self.config.heterogeneous:
            prepared = prepared.homogeneous()
        return prepared

    def forward(self, graph: HeteroGraph) -> Tensor:
        """Predict power for each graph in the (possibly batched) input."""
        batch = GraphBatch.from_graph(self.prepare_graph(graph))
        embeddings = batch.node_features
        pooled_layers: list[Tensor] = []
        for conv in self.convs:
            embeddings = conv(embeddings, batch)
            embeddings = self.dropout(embeddings)
            pooled_layers.append(
                embeddings.segment_sum(batch.batch, batch.num_graphs)
            )
        # Eq. 6: sum the pooled embeddings of every convolution layer.
        graph_embedding = pooled_layers[0]
        for pooled in pooled_layers[1:]:
            graph_embedding = graph_embedding + pooled

        if self.metadata_mlp is not None:
            metadata_embedding = self.metadata_mlp(batch.metadata)
            holistic = graph_embedding.concat(metadata_embedding, axis=1)
        else:
            holistic = graph_embedding
        prediction = self.head(holistic)
        return prediction.reshape(-1)

    # ---------------------------------------------------------------- predict

    def predict(self, graphs: list[HeteroGraph]) -> np.ndarray:
        """Inference helper: predictions for a list of graphs, without autograd."""
        self.eval()
        outputs = []
        with no_grad():
            for graph in graphs:
                outputs.append(self.forward(graph).numpy().reshape(-1))
        self.train()
        return np.concatenate(outputs)


def segment_mean(values: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Mean-aggregation helper shared by GraphSAGE."""
    sums = values.segment_sum(index, num_segments)
    counts = np.zeros(num_segments)
    np.add.at(counts, index, 1.0)
    counts[counts == 0] = 1.0
    return sums * Tensor((1.0 / counts).reshape(-1, 1))


def num_relations(config: GNNConfig) -> int:
    return len(RELATION_TYPES) if config.heterogeneous else 1
