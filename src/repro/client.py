"""``repro.client`` — the typed client of the versioned ``/v1`` API.

:class:`PowerClient` wraps the wire protocol — pooled keep-alive
connections, the unified error envelope, the job lifecycle — behind typed
methods, so callers never hand-build paths or parse ``{"error": ...}``
bodies.  It speaks to either HTTP front end (a single
:class:`~repro.runtime.http.GatewayHTTPServer` or a
:class:`~repro.cluster.router.ClusterRouter`): both serve the same route
table, which is the point of defining it once.

Async by construction (the natural shape over
:class:`~repro.runtime.http.HTTPConnectionPool`, and what a DSE driver
holding many in-flight jobs wants)::

    async with PowerClient(host, port, client_id="sweeps") as client:
        job = await client.submit_explore("atax", budget=0.4)
        async for update in client.iter_updates(job["job_id"]):
            print(update["iteration"], update["frontier_size"])
        done = await client.wait(job["job_id"])

Failures raise :class:`PowerAPIError` carrying the envelope's machine-
readable ``error_type`` and the ``retryable`` policy bit — a backoff loop
branches on ``error.retryable``, never on message strings.
"""

from __future__ import annotations

import asyncio

from repro.runtime.http import HTTPConnectionPool

__all__ = ["PowerAPIError", "PowerClient"]

#: Job states after which no further transition happens.
TERMINAL_JOB_STATES = frozenset({"succeeded", "failed", "cancelled"})


class PowerAPIError(RuntimeError):
    """A structured API failure: the unified error envelope, typed.

    ``retryable`` mirrors the envelope: ``True`` means the identical request
    may succeed later (backpressure, quota, restart), ``False`` means it
    won't (malformed request, unknown job, internal fault).
    """

    def __init__(
        self, status: int, error_type: str, message: str, retryable: bool
    ) -> None:
        super().__init__(f"{status} {error_type}: {message}")
        self.status = status
        self.error_type = error_type
        self.message = message
        self.retryable = retryable

    @staticmethod
    def from_payload(status: int, payload: dict) -> "PowerAPIError":
        detail = payload.get("error") if isinstance(payload, dict) else None
        detail = detail if isinstance(detail, dict) else {}
        return PowerAPIError(
            status,
            detail.get("type", "error"),
            detail.get("message", f"request failed with status {status}"),
            bool(detail.get("retryable", False)),
        )


class PowerClient:
    """Typed asyncio client for the ``/v1`` API (estimates, jobs, deployments).

    ``client_id`` is the quota identity job submissions ride under (the
    ``X-Client-ID`` header); distinct drivers should pick distinct ids so
    one driver's queue cannot starve another's admission quota.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client_id: str = "default",
        request_timeout: float = 300.0,
    ) -> None:
        self.client_id = client_id
        self._pool = HTTPConnectionPool(
            host, port, request_timeout=request_timeout
        )

    # ------------------------------------------------------------- plumbing

    async def _call(
        self, method: str, path: str, body: dict | None = None
    ) -> dict:
        status, payload = await self._pool.request_json(
            method, path, body, {"X-Client-ID": self.client_id}
        )
        if status >= 400:
            raise PowerAPIError.from_payload(status, payload)
        return payload

    async def aclose(self) -> None:
        await self._pool.aclose()

    async def __aenter__(self) -> "PowerClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------- estimates

    async def estimate(self, kernel: str, directives: dict | None = None) -> dict:
        """One design point → one estimate (the wire shape of
        :class:`~repro.serve.service.EstimateResponse`)."""
        body: dict = {"kernel": kernel}
        if directives is not None:
            body["directives"] = directives
        return await self._call("POST", "/v1/estimate", body)

    async def estimate_many(self, requests: list[dict]) -> list[dict]:
        """A batch of design points, answered in request order."""
        payload = await self._call(
            "POST", "/v1/estimate_many", {"requests": list(requests)}
        )
        return payload["responses"]

    # ------------------------------------------------------------------ jobs

    async def submit_explore(
        self,
        kernel: str,
        *,
        budget: float | None = None,
        dse_config: dict | None = None,
    ) -> dict:
        """Submit one exploration job; returns its ``queued`` snapshot."""
        body: dict = {"kernel": kernel}
        if budget is not None:
            body["budget"] = budget
        if dse_config is not None:
            body["dse_config"] = dse_config
        return await self._call("POST", "/v1/jobs/explore", body)

    async def job(self, job_id: str) -> dict:
        """One job's snapshot (state machine + progress + result)."""
        return await self._call("GET", f"/v1/jobs/{job_id}")

    async def jobs(self, client: str | None = None) -> list[dict]:
        suffix = f"?client={client}" if client else ""
        payload = await self._call("GET", f"/v1/jobs{suffix}")
        return payload["jobs"]

    async def updates(self, job_id: str, since: int = 0) -> dict:
        """One non-blocking poll of the seq-numbered update log."""
        return await self._call("GET", f"/v1/jobs/{job_id}/updates?since={since}")

    async def iter_updates(self, job_id: str, since: int = 0):
        """Async-iterate a job's updates live, long-polling underneath,
        until the terminal ``done`` update (which is also yielded)."""
        while True:
            payload = await self._call(
                "GET", f"/v1/jobs/{job_id}/updates?since={since}&wait=10"
            )
            for update in payload["updates"]:
                yield update
                if update.get("event") == "done":
                    return
            since = payload["next_since"]
            if not payload["updates"] and payload["state"] in TERMINAL_JOB_STATES:
                return  # resumed past the end of a finished log

    async def wait(
        self, job_id: str, timeout: float | None = None, poll_s: float = 0.25
    ) -> dict:
        """Block until the job is terminal; returns its final snapshot."""
        deadline = (
            None if timeout is None else asyncio.get_event_loop().time() + timeout
        )
        while True:
            snapshot = await self.job(job_id)
            if snapshot["state"] in TERMINAL_JOB_STATES:
                return snapshot
            if deadline is not None and asyncio.get_event_loop().time() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['state']} after {timeout}s"
                )
            await asyncio.sleep(poll_s)

    async def cancel(self, job_id: str) -> dict:
        return await self._call("POST", f"/v1/jobs/{job_id}/cancel", {})

    async def explore(self, kernel: str, budget: float | None = None) -> dict:
        """Submit + wait + unwrap: the convenience the deprecated blocking
        ``POST /v1/explore`` used to be, built on the jobs API."""
        job = await self.submit_explore(kernel, budget=budget)
        snapshot = await self.wait(job["job_id"])
        if snapshot["state"] != "succeeded":
            raise PowerAPIError(
                500,
                f"job_{snapshot['state']}",
                snapshot.get("error") or f"job {job['job_id']} {snapshot['state']}",
                False,
            )
        return snapshot["result"]

    # ---------------------------------------------------------- deployments

    async def get_deployment(self) -> dict:
        """The live deployment view: plan (or ``None``), seq, default model."""
        return await self._call("GET", "/v1/deployments")

    async def put_deployment(self, plan: dict) -> dict:
        """Publish a deployment plan document; returns the installed view.

        A plan referencing an artifact the registry lacks raises
        :class:`PowerAPIError` with ``error_type == "unknown_artifact"``
        (not retryable) — the unified envelope, not a stringly 400.
        """
        return await self._call("PUT", "/v1/deployments", dict(plan))

    async def promote(self, pattern: str | None = None) -> dict:
        """Promote challenger(s) to champion — all rules, or one pattern."""
        body = {} if pattern is None else {"pattern": pattern}
        return await self._call("POST", "/v1/deployments/promote", body)

    async def rollback(self, pattern: str | None = None) -> dict:
        """Drop challenger(s) from the live plan — all rules, or one pattern."""
        body = {} if pattern is None else {"pattern": pattern}
        return await self._call("POST", "/v1/deployments/rollback", body)

    # ----------------------------------------------------------- discovery

    async def routes(self) -> list[dict]:
        """The server's machine-readable route table (``GET /v1/routes``)."""
        payload = await self._call("GET", "/v1/routes")
        return payload["routes"]

    async def healthz(self) -> dict:
        return await self._call("GET", "/healthz")

    def stats(self) -> dict:
        """Connection-pool counters (created/reused/idle)."""
        return self._pool.stats()
