"""Deterministic random-number helpers.

Every stochastic component in the library (stimulus generation, measurement
noise, model initialisation, data splits) takes an explicit seed or
:class:`numpy.random.Generator` so experiments are reproducible.  These helpers
centralise the conventions used to create and derive generators.
"""

from __future__ import annotations

import hashlib

import numpy as np


def new_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may already be a generator (returned unchanged), ``None`` (a
    non-deterministic generator) or an integer seed.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a stable sub-seed from ``base_seed`` and a sequence of labels.

    The derivation hashes the labels so that independent components (for
    example the stimulus generator of the ``atax`` kernel and the measurement
    noise of design point 17) receive decorrelated streams, while remaining
    fully reproducible across runs and platforms.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little") % (2**63)


def spawn_rng(base_seed: int, *labels: object) -> np.random.Generator:
    """Create a generator seeded by :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(base_seed, *labels))
