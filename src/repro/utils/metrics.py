"""Error metrics used throughout the evaluation.

The paper reports mean absolute percentage error (MAPE) against on-board
measurement for total and dynamic power (Tables I and II) and the average
distance from reference set (ADRS) for the DSE case study (Table III, defined
in :mod:`repro.dse.pareto`).
"""

from __future__ import annotations

import numpy as np


def _as_arrays(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch between targets {y_true.shape} and predictions {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("metrics require at least one sample")
    return y_true, y_pred


def absolute_percentage_errors(y_true, y_pred) -> np.ndarray:
    """Per-sample absolute percentage errors, in percent."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    if np.any(y_true == 0):
        raise ValueError("percentage error is undefined for zero targets")
    return np.abs((y_pred - y_true) / y_true) * 100.0


def mape(y_true, y_pred) -> float:
    """Mean absolute percentage error in percent (the paper's accuracy metric)."""
    return float(np.mean(absolute_percentage_errors(y_true, y_pred)))


def mean_absolute_error(y_true, y_pred) -> float:
    y_true, y_pred = _as_arrays(y_true, y_pred)
    return float(np.mean(np.abs(y_pred - y_true)))


def root_mean_squared_error(y_true, y_pred) -> float:
    y_true, y_pred = _as_arrays(y_true, y_pred)
    return float(np.sqrt(np.mean((y_pred - y_true) ** 2)))


def relative_gain(baseline: float, improved: float) -> float:
    """Relative improvement of ``improved`` over ``baseline`` in percent.

    Used for the "PowerGear gains" columns of Table III, where lower values
    (ADRS) are better: ``relative_gain(0.1050, 0.0981) ≈ 6.6``.
    """
    if baseline == 0:
        raise ValueError("baseline must be non-zero")
    return float((baseline - improved) / baseline * 100.0)
