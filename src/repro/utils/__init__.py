"""Shared utilities: seeded RNG management, metrics and validation helpers."""

from repro.utils.rng import new_rng, derive_seed
from repro.utils.metrics import (
    mape,
    mean_absolute_error,
    root_mean_squared_error,
    absolute_percentage_errors,
)

__all__ = [
    "new_rng",
    "derive_seed",
    "mape",
    "mean_absolute_error",
    "root_mean_squared_error",
    "absolute_percentage_errors",
]
