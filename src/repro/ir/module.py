"""Structured IR containers: modules, functions and loop regions.

Vivado HLS performs loop analysis before scheduling, so the IR consumed by the
back end is effectively *structured*: a function body is a sequence of
instructions and perfectly nested loop regions, each carrying its directives
(pipeline / unroll).  We model that shape directly instead of a generic CFG,
which keeps scheduling, interpretation and DFG extraction simple while
preserving the LLVM opcode vocabulary the paper's flow inspects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.ir.instructions import Instruction
from repro.ir.types import IntType
from repro.ir.values import Argument, InductionVariable


class LoopRegion:
    """A counted loop with a fixed trip count, step 1 and an induction variable.

    ``pragmas`` is filled by the HLS front end with a
    :class:`repro.hls.pragmas.LoopPragmas` instance; it is kept untyped here to
    avoid a circular dependency between the IR and HLS packages.
    """

    def __init__(
        self,
        indvar: InductionVariable,
        trip_count: int,
        body: list["Item"] | None = None,
        pragmas: object | None = None,
        name: str = "",
    ) -> None:
        if trip_count <= 0:
            raise ValueError(f"loop trip count must be positive, got {trip_count}")
        self.indvar = indvar
        self.trip_count = trip_count
        self.body: list[Item] = list(body or [])
        self.pragmas = pragmas
        self.name = name or f"loop_{indvar.name}"

    def __repr__(self) -> str:
        return f"LoopRegion({self.name}, trip={self.trip_count}, items={len(self.body)})"


Item = Union[Instruction, LoopRegion]


@dataclass
class Function:
    """A top-level HLS function (one hardware kernel)."""

    name: str
    args: list[Argument] = field(default_factory=list)
    body: list[Item] = field(default_factory=list)

    def argument(self, name: str) -> Argument:
        for arg in self.args:
            if arg.name == name:
                return arg
        raise KeyError(f"function {self.name!r} has no argument {name!r}")

    @property
    def instructions(self) -> list[Instruction]:
        return list(walk_instructions(self.body))

    @property
    def loops(self) -> list[LoopRegion]:
        return [item for item in walk_items(self.body) if isinstance(item, LoopRegion)]

    def __repr__(self) -> str:
        return (
            f"Function({self.name}, args={len(self.args)}, "
            f"instructions={len(self.instructions)})"
        )


@dataclass
class Module:
    """A compilation unit: currently a single kernel function plus metadata."""

    name: str
    functions: list[Function] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def add_function(self, function: Function) -> Function:
        self.functions.append(function)
        return function

    def function(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"module {self.name!r} has no function {name!r}")


def walk_items(body: list[Item]) -> Iterator[Item]:
    """Yield every item (instructions and loop regions) in nesting order."""
    for item in body:
        yield item
        if isinstance(item, LoopRegion):
            yield from walk_items(item.body)


def walk_instructions(body: list[Item]) -> Iterator[Instruction]:
    """Yield every instruction in nesting order."""
    for item in walk_items(body):
        if isinstance(item, Instruction):
            yield item


def loop_depth_of(function: Function) -> dict[int, int]:
    """Map each instruction ``uid`` to its loop nesting depth (0 = top level)."""
    depths: dict[int, int] = {}

    def visit(body: list[Item], depth: int) -> None:
        for item in body:
            if isinstance(item, Instruction):
                depths[item.uid] = depth
            else:
                visit(item.body, depth + 1)

    visit(function.body, 0)
    return depths


def total_trip_count(function: Function) -> int:
    """Product of trip counts along the deepest loop nest (an upper bound on
    the number of innermost-body executions), used for latency sanity checks."""

    def visit(body: list[Item]) -> int:
        best = 1
        for item in body:
            if isinstance(item, LoopRegion):
                best = max(best, item.trip_count * visit(item.body))
        return best

    return visit(function.body)


def new_indvar(name: str, width: int = 32) -> InductionVariable:
    """Convenience constructor for loop induction variables."""
    return InductionVariable(name, IntType(width))
