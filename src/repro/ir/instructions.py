"""Instruction set of the HLS IR.

The opcode vocabulary follows LLVM, restricted to what Vivado HLS emits for
PolyBench-style kernels and what the PowerGear graph construction flow keys on:
memory management (``alloca``/``getelementptr``/``load``/``store``), integer and
floating-point arithmetic, comparisons, width casts and bitwise logic.

Each opcode belongs to an :class:`OpCategory`, which determines

* whether the corresponding DFG node counts as *arithmetic* (``A``) or
  *non-arithmetic* (``N``) in the heterogeneous graph (Section III-A), and
* its latency / resource entry in the HLS operator library
  (:mod:`repro.hls.op_library`).
"""

from __future__ import annotations

import enum

from repro.ir.types import IRType, VoidType
from repro.ir.values import Value


class Opcode(enum.Enum):
    """LLVM-style opcode names."""

    # Memory
    ALLOCA = "alloca"
    GETELEMENTPTR = "getelementptr"
    LOAD = "load"
    STORE = "store"
    # Floating point arithmetic
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    # Integer arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    SDIV = "sdiv"
    # Comparison / selection
    ICMP = "icmp"
    FCMP = "fcmp"
    SELECT = "select"
    # Casts
    SEXT = "sext"
    ZEXT = "zext"
    TRUNC = "trunc"
    SITOFP = "sitofp"
    FPTOSI = "fptosi"
    BITCAST = "bitcast"
    # Bitwise
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"
    # Control / misc
    PHI = "phi"
    RET = "ret"


class OpCategory(enum.Enum):
    """Coarse operation categories used for features and the operator library."""

    MEMORY = "memory"
    FLOAT_ARITH = "float_arith"
    INT_ARITH = "int_arith"
    COMPARE = "compare"
    CAST = "cast"
    BITWISE = "bitwise"
    CONTROL = "control"


OP_CATEGORIES: dict[Opcode, OpCategory] = {
    Opcode.ALLOCA: OpCategory.MEMORY,
    Opcode.GETELEMENTPTR: OpCategory.MEMORY,
    Opcode.LOAD: OpCategory.MEMORY,
    Opcode.STORE: OpCategory.MEMORY,
    Opcode.FADD: OpCategory.FLOAT_ARITH,
    Opcode.FSUB: OpCategory.FLOAT_ARITH,
    Opcode.FMUL: OpCategory.FLOAT_ARITH,
    Opcode.FDIV: OpCategory.FLOAT_ARITH,
    Opcode.ADD: OpCategory.INT_ARITH,
    Opcode.SUB: OpCategory.INT_ARITH,
    Opcode.MUL: OpCategory.INT_ARITH,
    Opcode.SDIV: OpCategory.INT_ARITH,
    Opcode.ICMP: OpCategory.COMPARE,
    Opcode.FCMP: OpCategory.COMPARE,
    Opcode.SELECT: OpCategory.COMPARE,
    Opcode.SEXT: OpCategory.CAST,
    Opcode.ZEXT: OpCategory.CAST,
    Opcode.TRUNC: OpCategory.CAST,
    Opcode.SITOFP: OpCategory.CAST,
    Opcode.FPTOSI: OpCategory.CAST,
    Opcode.BITCAST: OpCategory.CAST,
    Opcode.AND: OpCategory.BITWISE,
    Opcode.OR: OpCategory.BITWISE,
    Opcode.XOR: OpCategory.BITWISE,
    Opcode.SHL: OpCategory.BITWISE,
    Opcode.LSHR: OpCategory.BITWISE,
    Opcode.ASHR: OpCategory.BITWISE,
    Opcode.PHI: OpCategory.CONTROL,
    Opcode.RET: OpCategory.CONTROL,
}

#: Opcodes whose DFG nodes count as arithmetic (``A``) in the heterogeneous graph.
ARITHMETIC_OPCODES: frozenset[Opcode] = frozenset(
    op
    for op, cat in OP_CATEGORIES.items()
    if cat in (OpCategory.FLOAT_ARITH, OpCategory.INT_ARITH)
)

#: Opcodes that produce trivial hardware and are bypassed during graph trimming.
TRIVIAL_OPCODES: frozenset[Opcode] = frozenset(
    {Opcode.SEXT, Opcode.ZEXT, Opcode.TRUNC, Opcode.BITCAST, Opcode.SITOFP, Opcode.FPTOSI}
)

#: Opcodes involved in on-chip buffer inference (Section III-A, buffer insertion).
MEMORY_ACCESS_OPCODES: frozenset[Opcode] = frozenset({Opcode.LOAD, Opcode.STORE})
ADDRESS_OPCODES: frozenset[Opcode] = frozenset({Opcode.ALLOCA, Opcode.GETELEMENTPTR})


class Instruction(Value):
    """A single SSA instruction.

    ``operands`` reference :class:`~repro.ir.values.Value` objects, which makes
    def-use edges (and therefore DFG edges) implicit in the IR itself.
    ``attrs`` carries opcode-specific extras such as the comparison predicate
    of ``icmp`` or the allocated array type of ``alloca``.
    """

    def __init__(
        self,
        opcode: Opcode,
        operands: list[Value],
        result_type: IRType,
        name: str = "",
        attrs: dict | None = None,
    ) -> None:
        super().__init__(result_type, name)
        self.opcode = opcode
        self.operands = list(operands)
        self.attrs = dict(attrs or {})

    @property
    def category(self) -> OpCategory:
        return OP_CATEGORIES[self.opcode]

    @property
    def is_arithmetic(self) -> bool:
        """True for nodes classified as arithmetic (``A``) in the power graph."""
        return self.opcode in ARITHMETIC_OPCODES

    @property
    def is_trivial(self) -> bool:
        """True for cast-like operations removed by graph trimming."""
        return self.opcode in TRIVIAL_OPCODES

    @property
    def has_result(self) -> bool:
        return not isinstance(self.type, VoidType)

    def __repr__(self) -> str:
        ops = ", ".join(op.name for op in self.operands)
        if self.has_result:
            return f"%{self.name} = {self.opcode.value} {ops}"
        return f"{self.opcode.value} {ops}"
