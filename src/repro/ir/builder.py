"""Convenience builder for constructing IR functions programmatically.

The HLS front end (:mod:`repro.hls.frontend`) uses this builder to lower
kernel specifications; tests use it to build small hand-written functions.
The builder tracks an *insertion point* (a body list), so loops can be opened
and closed like context managers.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.ir.instructions import Instruction, Opcode
from repro.ir.module import Function, LoopRegion, new_indvar
from repro.ir.types import (
    ArrayType,
    FloatType,
    IRType,
    IntType,
    PointerType,
    VOID,
    INT1,
    INT32,
)
from repro.ir.values import Argument, ArgumentDirection, Constant, InductionVariable, Value


class IRBuilder:
    """Builds a single :class:`~repro.ir.module.Function`."""

    def __init__(self, name: str) -> None:
        self.function = Function(name=name)
        self._insertion_stack: list[list] = [self.function.body]
        self._name_counts: dict[str, int] = {}

    # ------------------------------------------------------------------ util

    def _unique_name(self, stem: str) -> str:
        count = self._name_counts.get(stem, 0)
        self._name_counts[stem] = count + 1
        return f"{stem}{count}"

    def _emit(self, instr: Instruction) -> Instruction:
        self._insertion_stack[-1].append(instr)
        return instr

    # ------------------------------------------------------------- arguments

    def add_argument(
        self,
        name: str,
        ty: IRType,
        direction: ArgumentDirection = ArgumentDirection.IN,
    ) -> Argument:
        arg = Argument(name, ty, direction)
        self.function.args.append(arg)
        return arg

    def add_array_argument(
        self,
        name: str,
        shape: tuple[int, ...],
        element: IRType = FloatType(32),
        direction: ArgumentDirection = ArgumentDirection.IN,
    ) -> Argument:
        array_ty = ArrayType(element, tuple(shape))
        return self.add_argument(name, PointerType(array_ty), direction)

    def add_scalar_argument(
        self, name: str, ty: IRType = FloatType(32)
    ) -> Argument:
        return self.add_argument(name, ty, ArgumentDirection.IN)

    # ----------------------------------------------------------------- loops

    @contextmanager
    def loop(
        self, name: str, trip_count: int, pragmas: object | None = None
    ) -> Iterator[InductionVariable]:
        """Open a loop region; the yielded value is the induction variable."""
        indvar = new_indvar(self._unique_name(name))
        region = LoopRegion(indvar, trip_count, pragmas=pragmas, name=name)
        self._insertion_stack[-1].append(region)
        self._insertion_stack.append(region.body)
        try:
            yield indvar
        finally:
            self._insertion_stack.pop()

    # ------------------------------------------------------------- constants

    @staticmethod
    def const_int(value: int, width: int = 32) -> Constant:
        return Constant(value, IntType(width))

    @staticmethod
    def const_float(value: float, width: int = 32) -> Constant:
        return Constant(value, FloatType(width))

    # ---------------------------------------------------------------- memory

    def alloca(self, name: str, ty: IRType) -> Instruction:
        """Allocate a local scalar or array (becomes an internal buffer)."""
        return self._emit(
            Instruction(
                Opcode.ALLOCA,
                [],
                PointerType(ty),
                name=self._unique_name(name),
                attrs={"allocated_type": ty},
            )
        )

    def getelementptr(self, base: Value, indices: list[Value]) -> Instruction:
        base_ty = base.type
        if not isinstance(base_ty, PointerType):
            raise TypeError(f"getelementptr base must be a pointer, got {base_ty}")
        pointee = base_ty.pointee
        if isinstance(pointee, ArrayType):
            elem_ty: IRType = pointee.element
            shape: tuple[int, ...] = pointee.shape
        else:
            elem_ty = pointee
            shape = (1,)
        return self._emit(
            Instruction(
                Opcode.GETELEMENTPTR,
                [base, *indices],
                PointerType(elem_ty),
                name=self._unique_name("addr"),
                attrs={"shape": shape},
            )
        )

    def load(self, pointer: Value, name: str = "ld") -> Instruction:
        ptr_ty = pointer.type
        if not isinstance(ptr_ty, PointerType):
            raise TypeError(f"load expects a pointer operand, got {ptr_ty}")
        return self._emit(
            Instruction(Opcode.LOAD, [pointer], ptr_ty.pointee, name=self._unique_name(name))
        )

    def store(self, value: Value, pointer: Value) -> Instruction:
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"store expects a pointer operand, got {pointer.type}")
        return self._emit(Instruction(Opcode.STORE, [value, pointer], VOID, name=self._unique_name("st")))

    # ------------------------------------------------------------ arithmetic

    def _binary(self, opcode: Opcode, lhs: Value, rhs: Value, stem: str) -> Instruction:
        return self._emit(
            Instruction(opcode, [lhs, rhs], lhs.type, name=self._unique_name(stem))
        )

    def fadd(self, lhs: Value, rhs: Value) -> Instruction:
        return self._binary(Opcode.FADD, lhs, rhs, "fadd")

    def fsub(self, lhs: Value, rhs: Value) -> Instruction:
        return self._binary(Opcode.FSUB, lhs, rhs, "fsub")

    def fmul(self, lhs: Value, rhs: Value) -> Instruction:
        return self._binary(Opcode.FMUL, lhs, rhs, "fmul")

    def fdiv(self, lhs: Value, rhs: Value) -> Instruction:
        return self._binary(Opcode.FDIV, lhs, rhs, "fdiv")

    def add(self, lhs: Value, rhs: Value) -> Instruction:
        return self._binary(Opcode.ADD, lhs, rhs, "add")

    def sub(self, lhs: Value, rhs: Value) -> Instruction:
        return self._binary(Opcode.SUB, lhs, rhs, "sub")

    def mul(self, lhs: Value, rhs: Value) -> Instruction:
        return self._binary(Opcode.MUL, lhs, rhs, "mul")

    def sdiv(self, lhs: Value, rhs: Value) -> Instruction:
        return self._binary(Opcode.SDIV, lhs, rhs, "sdiv")

    # ----------------------------------------------------------- comparisons

    def icmp(self, predicate: str, lhs: Value, rhs: Value) -> Instruction:
        return self._emit(
            Instruction(
                Opcode.ICMP,
                [lhs, rhs],
                INT1,
                name=self._unique_name("cmp"),
                attrs={"predicate": predicate},
            )
        )

    def fcmp(self, predicate: str, lhs: Value, rhs: Value) -> Instruction:
        return self._emit(
            Instruction(
                Opcode.FCMP,
                [lhs, rhs],
                INT1,
                name=self._unique_name("fcmp"),
                attrs={"predicate": predicate},
            )
        )

    def select(self, cond: Value, if_true: Value, if_false: Value) -> Instruction:
        return self._emit(
            Instruction(
                Opcode.SELECT,
                [cond, if_true, if_false],
                if_true.type,
                name=self._unique_name("sel"),
            )
        )

    # ----------------------------------------------------------------- casts

    def _cast(self, opcode: Opcode, value: Value, target: IRType, stem: str) -> Instruction:
        return self._emit(
            Instruction(opcode, [value], target, name=self._unique_name(stem))
        )

    def sext(self, value: Value, target: IntType) -> Instruction:
        return self._cast(Opcode.SEXT, value, target, "sext")

    def zext(self, value: Value, target: IntType) -> Instruction:
        return self._cast(Opcode.ZEXT, value, target, "zext")

    def trunc(self, value: Value, target: IntType) -> Instruction:
        return self._cast(Opcode.TRUNC, value, target, "trunc")

    def sitofp(self, value: Value, target: FloatType = FloatType(32)) -> Instruction:
        return self._cast(Opcode.SITOFP, value, target, "sitofp")

    def fptosi(self, value: Value, target: IntType = INT32) -> Instruction:
        return self._cast(Opcode.FPTOSI, value, target, "fptosi")

    # --------------------------------------------------------------- bitwise

    def and_(self, lhs: Value, rhs: Value) -> Instruction:
        return self._binary(Opcode.AND, lhs, rhs, "and")

    def or_(self, lhs: Value, rhs: Value) -> Instruction:
        return self._binary(Opcode.OR, lhs, rhs, "or")

    def xor(self, lhs: Value, rhs: Value) -> Instruction:
        return self._binary(Opcode.XOR, lhs, rhs, "xor")

    def shl(self, lhs: Value, rhs: Value) -> Instruction:
        return self._binary(Opcode.SHL, lhs, rhs, "shl")

    # --------------------------------------------------------------- control

    def ret(self, value: Value | None = None) -> Instruction:
        operands = [value] if value is not None else []
        return self._emit(Instruction(Opcode.RET, operands, VOID, name=self._unique_name("ret")))

    # ------------------------------------------------------------------ done

    def build(self) -> Function:
        """Finalise and return the constructed function."""
        if len(self._insertion_stack) != 1:
            raise RuntimeError("unterminated loop region while building function")
        return self.function
