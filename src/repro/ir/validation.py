"""Structural validation of IR functions.

The validator checks the invariants the rest of the pipeline relies on:
operands are defined before use (SSA dominance in the structured sense),
pointers are only produced by ``alloca``/``getelementptr``/array arguments,
loads and stores address pointers, and loop trip counts are positive.
"""

from __future__ import annotations

from repro.ir.instructions import Instruction, Opcode
from repro.ir.module import Function, Item, LoopRegion
from repro.ir.types import PointerType, VoidType
from repro.ir.values import Constant, Value


class IRValidationError(Exception):
    """Raised when a function violates an IR invariant."""


def validate_function(function: Function) -> None:
    """Validate ``function``; raise :class:`IRValidationError` on the first violation."""
    defined: set[int] = {arg.uid for arg in function.args}

    def check_operand(instr: Instruction, operand: Value) -> None:
        if isinstance(operand, (Constant,)):
            return
        if operand.uid not in defined:
            raise IRValidationError(
                f"instruction {instr!r} uses {operand!r} before definition"
            )

    def visit(body: list[Item]) -> None:
        for item in body:
            if isinstance(item, LoopRegion):
                if item.trip_count <= 0:
                    raise IRValidationError(f"loop {item.name} has non-positive trip count")
                defined.add(item.indvar.uid)
                visit(item.body)
                continue
            instr = item
            for operand in instr.operands:
                check_operand(instr, operand)
            _check_instruction(instr)
            if instr.has_result:
                defined.add(instr.uid)

    visit(function.body)


def _check_instruction(instr: Instruction) -> None:
    opcode = instr.opcode
    if opcode == Opcode.LOAD:
        if len(instr.operands) != 1 or not isinstance(instr.operands[0].type, PointerType):
            raise IRValidationError(f"load must take a single pointer operand: {instr!r}")
        if isinstance(instr.type, VoidType):
            raise IRValidationError(f"load must produce a value: {instr!r}")
    elif opcode == Opcode.STORE:
        if len(instr.operands) != 2 or not isinstance(instr.operands[1].type, PointerType):
            raise IRValidationError(
                f"store must take (value, pointer) operands: {instr!r}"
            )
        if not isinstance(instr.type, VoidType):
            raise IRValidationError(f"store must not produce a value: {instr!r}")
    elif opcode == Opcode.GETELEMENTPTR:
        if not instr.operands or not isinstance(instr.operands[0].type, PointerType):
            raise IRValidationError(
                f"getelementptr base operand must be a pointer: {instr!r}"
            )
        if not isinstance(instr.type, PointerType):
            raise IRValidationError(f"getelementptr must produce a pointer: {instr!r}")
    elif opcode == Opcode.ALLOCA:
        if "allocated_type" not in instr.attrs:
            raise IRValidationError(f"alloca must record its allocated type: {instr!r}")
        if not isinstance(instr.type, PointerType):
            raise IRValidationError(f"alloca must produce a pointer: {instr!r}")
    elif opcode in (
        Opcode.FADD,
        Opcode.FSUB,
        Opcode.FMUL,
        Opcode.FDIV,
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.SDIV,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.LSHR,
        Opcode.ASHR,
    ):
        if len(instr.operands) != 2:
            raise IRValidationError(f"binary operation must have two operands: {instr!r}")
    elif opcode in (Opcode.ICMP, Opcode.FCMP):
        if "predicate" not in instr.attrs:
            raise IRValidationError(f"comparison must carry a predicate: {instr!r}")
    elif opcode == Opcode.SELECT:
        if len(instr.operands) != 3:
            raise IRValidationError(f"select must have three operands: {instr!r}")


def pointer_roots(function: Function) -> dict[int, Value]:
    """Map each pointer-producing value's uid to its *root* buffer value.

    The root of a ``getelementptr`` chain is the ``alloca`` instruction or the
    array :class:`~repro.ir.values.Argument` it ultimately addresses.  Buffer
    insertion and the interpreter both rely on this mapping.
    """
    roots: dict[int, Value] = {}
    for arg in function.args:
        if isinstance(arg.type, PointerType):
            roots[arg.uid] = arg
    for instr in function.instructions:
        if instr.opcode == Opcode.ALLOCA:
            roots[instr.uid] = instr
        elif instr.opcode == Opcode.GETELEMENTPTR:
            base = instr.operands[0]
            root = roots.get(base.uid)
            if root is None:
                raise IRValidationError(
                    f"getelementptr base {base!r} does not trace back to a buffer"
                )
            roots[instr.uid] = root
    return roots
