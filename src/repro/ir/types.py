"""Type system for the HLS intermediate representation.

The types mirror the subset of LLVM types that matter for HLS power modelling:
fixed-width integers (bit width drives interconnect width and therefore
switching energy), IEEE-754 floats, pointers and statically shaped arrays
(which become on-chip buffers).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
import operator


class IRType:
    """Base class of every IR type."""

    @property
    def bit_width(self) -> int:
        """Number of datapath bits a value of this type occupies."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return str(self)


@dataclass(frozen=True)
class IntType(IRType):
    """Fixed-width integer type (``i1``, ``i8``, ``i32``...)."""

    width: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"integer width must be positive, got {self.width}")

    @property
    def bit_width(self) -> int:
        return self.width

    def __str__(self) -> str:
        return f"i{self.width}"


@dataclass(frozen=True)
class FloatType(IRType):
    """IEEE-754 floating point type (32-bit ``float`` or 64-bit ``double``)."""

    width: int = 32

    def __post_init__(self) -> None:
        if self.width not in (32, 64):
            raise ValueError(f"float width must be 32 or 64, got {self.width}")

    @property
    def bit_width(self) -> int:
        return self.width

    def __str__(self) -> str:
        return "float" if self.width == 32 else "double"


@dataclass(frozen=True)
class VoidType(IRType):
    """Type of instructions that produce no value (e.g. ``store``)."""

    @property
    def bit_width(self) -> int:
        return 0

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class ArrayType(IRType):
    """Statically shaped array, the source of on-chip buffers after HLS."""

    element: IRType
    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError("array shape must have at least one dimension")
        if any(dim <= 0 for dim in self.shape):
            raise ValueError(f"array dimensions must be positive, got {self.shape}")
        if isinstance(self.element, (ArrayType, VoidType, PointerType)):
            raise ValueError("array element must be a scalar type")

    @property
    def num_elements(self) -> int:
        return reduce(operator.mul, self.shape, 1)

    @property
    def bit_width(self) -> int:
        return self.element.bit_width * self.num_elements

    def __str__(self) -> str:
        dims = " x ".join(str(dim) for dim in self.shape)
        return f"[{dims} x {self.element}]"


@dataclass(frozen=True)
class PointerType(IRType):
    """Pointer to a scalar or array; the width models the address bus."""

    pointee: IRType
    address_width: int = 32

    @property
    def bit_width(self) -> int:
        return self.address_width

    def __str__(self) -> str:
        return f"{self.pointee}*"


def element_type(ty: IRType) -> IRType:
    """Return the scalar element type behind a pointer or array type."""
    if isinstance(ty, PointerType):
        return element_type(ty.pointee)
    if isinstance(ty, ArrayType):
        return ty.element
    return ty


INT1 = IntType(1)
INT8 = IntType(8)
INT16 = IntType(16)
INT32 = IntType(32)
INT64 = IntType(64)
FLOAT32 = FloatType(32)
FLOAT64 = FloatType(64)
VOID = VoidType()
