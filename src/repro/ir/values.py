"""Value hierarchy of the IR: constants, function arguments and instruction results.

Every operand of an instruction is a :class:`Value`.  Instructions themselves
are values (their result), mirroring LLVM's SSA design.
"""

from __future__ import annotations

import enum
import itertools

from repro.ir.types import IRType, IntType, FloatType


_value_counter = itertools.count()


class Value:
    """Base class of everything that can appear as an instruction operand."""

    def __init__(self, ty: IRType, name: str = "") -> None:
        self.type = ty
        self.uid = next(_value_counter)
        self.name = name or f"v{self.uid}"

    @property
    def bit_width(self) -> int:
        return self.type.bit_width

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}: {self.type})"


class Constant(Value):
    """Compile-time constant (loop bounds, literals, array indices)."""

    def __init__(self, value: float | int, ty: IRType, name: str = "") -> None:
        super().__init__(ty, name or f"const_{value}")
        if isinstance(ty, IntType):
            self.value: float | int = int(value)
        elif isinstance(ty, FloatType):
            self.value = float(value)
        else:
            self.value = value

    def __repr__(self) -> str:
        return f"Constant({self.value}: {self.type})"


class ArgumentDirection(enum.Enum):
    """Dataflow direction of a top-level function argument."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"


class Argument(Value):
    """Top-level function argument; array arguments become I/O buffers."""

    def __init__(
        self,
        name: str,
        ty: IRType,
        direction: ArgumentDirection = ArgumentDirection.IN,
    ) -> None:
        super().__init__(ty, name)
        self.direction = direction


class InductionVariable(Value):
    """Loop induction variable of a structured :class:`~repro.ir.module.LoopRegion`."""

    def __init__(self, name: str, ty: IRType) -> None:
        super().__init__(ty, name)
