"""Bit-level value packing used by the switching-activity computation.

Equation (2) of the paper computes Hamming distances between consecutive bit
vectors of the values crossing a DFG edge.  These helpers convert runtime
values (Python ints / floats produced by the interpreter) into fixed-width bit
patterns matching their IR type, and compute Hamming distances between them.
"""

from __future__ import annotations

import struct

from repro.ir.types import FloatType, IntType, IRType, PointerType


def value_bit_width(ty: IRType) -> int:
    """Datapath width of a scalar value of type ``ty``."""
    return ty.bit_width


def to_bits(value: float | int, ty: IRType) -> int:
    """Pack ``value`` into an unsigned integer holding its bit pattern."""
    if isinstance(ty, IntType):
        mask = (1 << ty.width) - 1
        return int(value) & mask
    if isinstance(ty, FloatType):
        if ty.width == 32:
            packed = struct.pack("<f", float(value))
            return int.from_bytes(packed, "little")
        packed = struct.pack("<d", float(value))
        return int.from_bytes(packed, "little")
    if isinstance(ty, PointerType):
        mask = (1 << ty.address_width) - 1
        return int(value) & mask
    raise TypeError(f"cannot bit-pack values of type {ty}")


def hamming_distance(bits_a: int, bits_b: int) -> int:
    """Number of differing bits between two packed values."""
    return int(bin(bits_a ^ bits_b).count("1"))


def hamming_between(value_a, value_b, ty: IRType) -> int:
    """Hamming distance between two runtime values of the same IR type."""
    return hamming_distance(to_bits(value_a, ty), to_bits(value_b, ty))
