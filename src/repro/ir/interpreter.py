"""Interpreter for the structured HLS IR.

The interpreter plays the role of the instrumented C/IR co-simulation the
paper uses to trace switching activity: it executes a kernel function on a
testbench stimulus and notifies registered observers of every dynamic
instruction execution (operand values consumed and result value produced).
The activity tracer (:mod:`repro.activity.tracer`) consumes these events to
accumulate Hamming-distance statistics per static instruction, which is all
Eq. (2)/(3) need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.ir.instructions import Instruction, Opcode
from repro.ir.module import Function, Item, LoopRegion
from repro.ir.types import ArrayType, FloatType, IntType, PointerType
from repro.ir.validation import pointer_roots
from repro.ir.values import Constant, Value


class ExecutionObserver(Protocol):
    """Callback interface for dynamic execution events."""

    def on_execute(
        self,
        instruction: Instruction,
        operand_values: list[float | int],
        result_value: float | int | None,
    ) -> None:
        """Called after each dynamic execution of ``instruction``."""


@dataclass
class ExecutionTrace:
    """Optional full trace of dynamic instruction executions (used in tests).

    Recording every event is memory hungry for full kernels, so the trace can
    be capped with ``max_events``; production activity tracing uses streaming
    observers instead.
    """

    max_events: int | None = None
    events: list[tuple[str, tuple, float | int | None]] = field(default_factory=list)
    truncated: bool = False

    def on_execute(self, instruction, operand_values, result_value) -> None:
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.truncated = True
            return
        self.events.append((instruction.name, tuple(operand_values), result_value))


@dataclass
class _Memory:
    """Flat storage for one buffer (array argument or alloca)."""

    data: np.ndarray
    element_type: IntType | FloatType


class IRInterpreter:
    """Executes a :class:`~repro.ir.module.Function` on concrete inputs."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self._roots = pointer_roots(function)
        self.observers: list[ExecutionObserver] = []
        self.dynamic_instruction_count = 0

    def add_observer(self, observer: ExecutionObserver) -> None:
        self.observers.append(observer)

    # -------------------------------------------------------------- plumbing

    def _allocate(self, ty: ArrayType | IntType | FloatType) -> _Memory:
        if isinstance(ty, ArrayType):
            elem = ty.element
            size = ty.num_elements
        else:
            elem = ty
            size = 1
        dtype = np.float64 if isinstance(elem, FloatType) else np.int64
        return _Memory(np.zeros(size, dtype=dtype), elem)

    def _bind_arguments(self, inputs: dict[str, np.ndarray | float | int]):
        env: dict[int, float | int] = {}
        memory: dict[int, _Memory] = {}
        for arg in self.function.args:
            ty = arg.type
            if isinstance(ty, PointerType):
                pointee = ty.pointee
                mem = self._allocate(pointee if isinstance(pointee, ArrayType) else pointee)
                if arg.name in inputs:
                    values = np.asarray(inputs[arg.name], dtype=mem.data.dtype).reshape(-1)
                    if values.size != mem.data.size:
                        raise ValueError(
                            f"argument {arg.name!r} expects {mem.data.size} elements, "
                            f"got {values.size}"
                        )
                    mem.data[:] = values
                memory[arg.uid] = mem
                env[arg.uid] = 0  # base offset of the buffer
            else:
                if arg.name not in inputs:
                    raise ValueError(f"missing scalar input for argument {arg.name!r}")
                env[arg.uid] = self._cast_scalar(inputs[arg.name], ty)
        return env, memory

    @staticmethod
    def _cast_scalar(value, ty) -> float | int:
        if isinstance(ty, IntType):
            return int(value)
        return float(np.float32(value)) if getattr(ty, "width", 64) == 32 else float(value)

    def _value_of(self, value: Value, env: dict[int, float | int]) -> float | int:
        if isinstance(value, Constant):
            return value.value
        if value.uid not in env:
            raise KeyError(f"value {value!r} has not been computed yet")
        return env[value.uid]

    # ------------------------------------------------------------- execution

    def run(self, inputs: dict[str, np.ndarray | float | int]) -> dict[str, np.ndarray]:
        """Execute the function and return the final contents of every buffer."""
        env, memory = self._bind_arguments(inputs)
        self.dynamic_instruction_count = 0
        self._exec_body(self.function.body, env, memory)
        outputs: dict[str, np.ndarray] = {}
        for arg in self.function.args:
            if arg.uid in memory:
                mem = memory[arg.uid]
                ty = arg.type.pointee
                shape = ty.shape if isinstance(ty, ArrayType) else (1,)
                outputs[arg.name] = mem.data.reshape(shape).copy()
        return outputs

    def _exec_body(self, body: list[Item], env, memory) -> None:
        for item in body:
            if isinstance(item, LoopRegion):
                for iteration in range(item.trip_count):
                    env[item.indvar.uid] = iteration
                    self._exec_body(item.body, env, memory)
            else:
                self._exec_instruction(item, env, memory)

    def _exec_instruction(self, instr: Instruction, env, memory) -> None:
        opcode = instr.opcode
        operand_values = [self._value_of(op, env) for op in instr.operands]
        result: float | int | None = None

        if opcode == Opcode.ALLOCA:
            allocated = instr.attrs["allocated_type"]
            memory[instr.uid] = self._allocate(allocated)
            result = 0
        elif opcode == Opcode.GETELEMENTPTR:
            result = self._exec_gep(instr, operand_values)
        elif opcode == Opcode.LOAD:
            mem = memory[self._roots[instr.operands[0].uid].uid]
            index = int(operand_values[0])
            raw = mem.data[index]
            result = self._cast_scalar(raw, instr.type)
        elif opcode == Opcode.STORE:
            mem = memory[self._roots[instr.operands[1].uid].uid]
            index = int(operand_values[1])
            mem.data[index] = operand_values[0]
        elif opcode == Opcode.RET:
            result = operand_values[0] if operand_values else None
        else:
            result = self._exec_compute(instr, operand_values)

        if instr.has_result and result is not None:
            env[instr.uid] = result

        self.dynamic_instruction_count += 1
        for observer in self.observers:
            observer.on_execute(instr, operand_values, result)

    def _exec_gep(self, instr: Instruction, operand_values) -> int:
        base_offset = int(operand_values[0])
        indices = [int(v) for v in operand_values[1:]]
        shape = instr.attrs.get("shape", (1,))
        offset = 0
        for dim, index in zip(shape, indices):
            offset = offset * dim + index
        return base_offset + offset

    def _exec_compute(self, instr: Instruction, vals) -> float | int:
        opcode = instr.opcode
        if opcode in (Opcode.FADD, Opcode.ADD):
            result = vals[0] + vals[1]
        elif opcode in (Opcode.FSUB, Opcode.SUB):
            result = vals[0] - vals[1]
        elif opcode in (Opcode.FMUL, Opcode.MUL):
            result = vals[0] * vals[1]
        elif opcode == Opcode.FDIV:
            result = vals[0] / vals[1] if vals[1] != 0 else 0.0
        elif opcode == Opcode.SDIV:
            result = int(vals[0] / vals[1]) if vals[1] != 0 else 0
        elif opcode == Opcode.ICMP:
            result = int(_compare(instr.attrs["predicate"], vals[0], vals[1]))
        elif opcode == Opcode.FCMP:
            result = int(_compare(instr.attrs["predicate"], vals[0], vals[1]))
        elif opcode == Opcode.SELECT:
            result = vals[1] if vals[0] else vals[2]
        elif opcode in (Opcode.SEXT, Opcode.ZEXT, Opcode.TRUNC, Opcode.BITCAST):
            result = self._apply_int_width(vals[0], instr)
        elif opcode == Opcode.SITOFP:
            result = float(vals[0])
        elif opcode == Opcode.FPTOSI:
            result = int(vals[0])
        elif opcode == Opcode.AND:
            result = int(vals[0]) & int(vals[1])
        elif opcode == Opcode.OR:
            result = int(vals[0]) | int(vals[1])
        elif opcode == Opcode.XOR:
            result = int(vals[0]) ^ int(vals[1])
        elif opcode == Opcode.SHL:
            result = int(vals[0]) << int(vals[1])
        elif opcode == Opcode.LSHR:
            result = int(vals[0]) >> int(vals[1])
        elif opcode == Opcode.ASHR:
            result = int(vals[0]) >> int(vals[1])
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"unsupported opcode {opcode}")

        if isinstance(instr.type, FloatType) and instr.type.width == 32:
            result = float(np.float32(result))
        elif isinstance(instr.type, IntType):
            result = int(result)
        return result

    @staticmethod
    def _apply_int_width(value, instr: Instruction) -> int | float:
        if isinstance(instr.type, IntType):
            width = instr.type.width
            mask = (1 << width) - 1
            result = int(value) & mask
            if instr.opcode == Opcode.SEXT and result >= (1 << (width - 1)):
                result -= 1 << width
            return result
        return value


def _compare(predicate: str, lhs, rhs) -> bool:
    if predicate in ("eq", "oeq"):
        return lhs == rhs
    if predicate in ("ne", "one"):
        return lhs != rhs
    if predicate in ("slt", "olt", "ult"):
        return lhs < rhs
    if predicate in ("sle", "ole", "ule"):
        return lhs <= rhs
    if predicate in ("sgt", "ogt", "ugt"):
        return lhs > rhs
    if predicate in ("sge", "oge", "uge"):
        return lhs >= rhs
    raise ValueError(f"unknown comparison predicate {predicate!r}")
