"""LLVM-flavoured intermediate representation used by the HLS substrate.

Vivado HLS exposes its front-end compilation result as LLVM IR; PowerGear's
graph construction flow consumes that IR together with the FSMD produced by the
HLS back end.  This package provides a compact, structured SSA-style IR with
the opcodes the paper's flow keys on (``alloca``, ``getelementptr``, ``load``,
``store``, floating point and integer arithmetic, width casts), a builder API,
a validator and an interpreter used for switching-activity tracing.
"""

from repro.ir.types import (
    IRType,
    IntType,
    FloatType,
    PointerType,
    ArrayType,
    VoidType,
    INT32,
    INT64,
    FLOAT32,
    INT1,
)
from repro.ir.values import Value, Constant, Argument, ArgumentDirection
from repro.ir.instructions import Opcode, Instruction, OP_CATEGORIES, OpCategory
from repro.ir.module import Module, Function, LoopRegion, walk_instructions, walk_items
from repro.ir.builder import IRBuilder
from repro.ir.validation import validate_function, IRValidationError
from repro.ir.interpreter import IRInterpreter, ExecutionTrace
from repro.ir.bitpack import to_bits, hamming_distance, value_bit_width

__all__ = [
    "IRType",
    "IntType",
    "FloatType",
    "PointerType",
    "ArrayType",
    "VoidType",
    "INT32",
    "INT64",
    "FLOAT32",
    "INT1",
    "Value",
    "Constant",
    "Argument",
    "ArgumentDirection",
    "Opcode",
    "Instruction",
    "OpCategory",
    "OP_CATEGORIES",
    "Module",
    "Function",
    "LoopRegion",
    "walk_instructions",
    "walk_items",
    "IRBuilder",
    "validate_function",
    "IRValidationError",
    "IRInterpreter",
    "ExecutionTrace",
    "to_bits",
    "hamming_distance",
    "value_bit_width",
]
