"""Supervisor event timeline: a bounded ring of pool lifecycle events.

The supervisor's health snapshot answers "what state is the pool in *now*";
this ring answers "what *sequence of events* got it there" — the difference
between seeing ``restarts: 3`` and seeing ``crash → restart(backoff 50ms) →
crash → restart(backoff 100ms) → scale_up(2→4)`` with timestamps.  Producers
(the supervisor, the service's degradation bookkeeping, the persistent
cache's read-only downgrade) call :meth:`EventLog.record`; consumers read it
merged into ``service.health()`` and at ``GET /v1/events``.

Events are plain JSON-safe dicts stamped with a wall-clock timestamp and a
monotonically increasing sequence number (so consumers can page / dedupe
without trusting clock monotonicity across processes).

Every live :class:`EventLog` also registers into a process-wide weak set so
a test harness can dump *all* timelines on failure
(:func:`dump_event_logs` — wired into ``tests/conftest.py`` behind
``REPRO_OBS_LOG_DIR`` for the CI failure artifact).
"""

from __future__ import annotations

import json
import threading
import time
import weakref
from collections import deque

__all__ = ["EventLog", "dump_event_logs"]

_LIVE_LOGS: "weakref.WeakSet[EventLog]" = weakref.WeakSet()
_LIVE_LOGS_LOCK = threading.Lock()


class EventLog:
    """Thread-safe bounded ring of timestamped lifecycle events."""

    def __init__(self, maxlen: int = 512) -> None:
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self._ring: deque[dict] = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        self._seq = 0
        self.recorded = 0
        with _LIVE_LOGS_LOCK:
            _LIVE_LOGS.add(self)

    def record(self, kind: str, *, pool: str | None = None, **fields) -> dict:
        """Append one event; returns the stamped record.

        ``kind`` is the event vocabulary consumers filter on: supervised
        pools emit ``crash``, ``restart``, ``budget_refund``, ``retire``,
        ``scale_up``, ``scale_down``, ``degrade``, ``heartbeat``,
        ``cache_read_only`` ...; the cluster layer emits the replica
        lifecycle — ``replica_spawn``, ``replica_ready``, ``replica_exit``,
        ``replica_eject``, ``replica_respawn``, ``replica_respawn_failed``,
        ``fingerprint_mismatch``.  Extra ``fields`` must be JSON-safe (the
        producer's contract — this ring is served verbatim).
        """
        with self._lock:
            self._seq += 1
            event = {
                "seq": self._seq,
                "time": time.time(),
                "kind": str(kind),
                **({"pool": pool} if pool is not None else {}),
                **fields,
            }
            self._ring.append(event)
            self.recorded += 1
        return event

    def snapshot(self, limit: int | None = None, kind: str | None = None) -> list[dict]:
        """Events oldest-first (the natural timeline read); optionally the
        last ``limit`` and/or only one ``kind``."""
        with self._lock:
            events = list(self._ring)
        if kind is not None:
            events = [event for event in events if event["kind"] == kind]
        if limit is not None:
            events = events[-max(limit, 0):]
        return [dict(event) for event in events]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def stats(self) -> dict:
        with self._lock:
            return {"recorded": self.recorded, "ring": len(self._ring)}


def dump_event_logs(path) -> int:
    """Write every live event log's timeline to ``path`` as JSON; returns the
    event count.  Best-effort debugging aid (garbage-collected logs are gone
    — that is fine, the interesting ones belong to the failing test's still-
    referenced service)."""
    with _LIVE_LOGS_LOCK:
        logs = list(_LIVE_LOGS)
    timelines = [log.snapshot() for log in logs]
    events = [event for timeline in timelines for event in timeline]
    events.sort(key=lambda event: event["time"])
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"event_logs": len(timelines), "events": events}, handle, indent=2)
    return len(events)
