"""``repro.obs`` — observability for the serving runtime.

Four primitives, one facade:

* :mod:`repro.obs.trace` — contextvar-based :class:`Tracer`: one request =
  one tree of timed spans across the event loop, bridge threads, the
  micro-batcher's flush and pool worker *processes* (worker spans travel
  back as picklable payloads), with a bounded recent-traces ring served at
  ``GET /v1/traces``;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters, gauges
  and fixed-bucket histograms with real p50/p95/p99 estimates, rendered as
  JSON (the existing ``/metrics``) and as Prometheus text exposition
  (``Accept: text/plain``);
* :mod:`repro.obs.logs` — structured JSON log lines over stdlib
  ``logging``, stamped with trace/request ids;
* :mod:`repro.obs.events` — the bounded supervisor event timeline
  (crash/restart/scale/retire/degrade) served at ``GET /v1/events`` and
  merged into ``service.health()``.

:class:`Observability` bundles one of each plus the pre-registered service
instruments, so every runtime layer receives a single handle
(``service.obs``).  The whole subsystem is side-band by construction: it
never touches request data, and the bitwise-determinism contract holds with
instrumentation on or off (``tests/test_obs_determinism.py``); its dispatch
cost is gated by ``benchmarks/test_obs_overhead.py``.
"""

from __future__ import annotations

from repro.obs.events import EventLog, dump_event_logs
from repro.obs.logs import (
    CollectingHandler,
    JsonFormatter,
    configure_json_logging,
    get_logger,
    log_event,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DIVERGENCE_BUCKETS,
    SIZE_BUCKETS,
    MetricsRegistry,
    flatten_numeric,
    json_safe,
)
from repro.obs.trace import Span, Trace, Tracer, current_trace_ids, span_payload

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DIVERGENCE_BUCKETS",
    "SIZE_BUCKETS",
    "ClusterObservability",
    "CollectingHandler",
    "EventLog",
    "JsonFormatter",
    "MetricsRegistry",
    "Observability",
    "Span",
    "Trace",
    "Tracer",
    "configure_json_logging",
    "current_trace_ids",
    "dump_event_logs",
    "flatten_numeric",
    "get_logger",
    "json_safe",
    "log_event",
    "span_payload",
]


class Observability:
    """One service's observability bundle: tracer + metrics + events + logger.

    Instruments the whole stack agrees on are registered here, once, so
    every layer (service, gateway, batcher, caches, supervisors) observes
    into the same families instead of each minting its own names:

    ========================================  =====================================
    instrument                                what lands in it
    ========================================  =====================================
    ``repro_request_seconds{endpoint}``       whole-call latency per endpoint
    ``repro_stage_seconds{stage}``            featurise / predict / cache_get /
                                              cache_put / batch_flush /
                                              pool_dispatch stage latencies
    ``repro_cache_requests_total{...}``       hit/miss per cache kind and tier
    ``repro_coalesced_batch_size``            micro-batch sizes at flush
    ``repro_gateway_designs_total{outcome}``  admitted / rejected_backpressure /
                                              rejected_closed designs
    ``repro_pool_events_total{pool,kind}``    supervisor lifecycle event counts
    ``repro_pool_worker_heartbeat_seconds``   per-worker last-heartbeat age
    ``repro_http_requests_total{path,status}``  HTTP requests by route and code
    ========================================  =====================================
    """

    def __init__(
        self,
        *,
        tracing: bool = True,
        trace_ring: int = 128,
        event_ring: int = 512,
    ) -> None:
        self.tracer = Tracer(ring_size=trace_ring, enabled=tracing)
        self.metrics = MetricsRegistry()
        self.events = EventLog(maxlen=event_ring)
        self.logger = get_logger("service")
        self.request_seconds = self.metrics.histogram(
            "repro_request_seconds",
            "Whole-call service latency per endpoint",
            labelnames=("endpoint",),
        )
        self.stage_seconds = self.metrics.histogram(
            "repro_stage_seconds",
            "Per-stage latency of the request path",
            labelnames=("stage",),
        )
        self.cache_requests = self.metrics.counter(
            "repro_cache_requests_total",
            "Cache lookups by kind (sample/prediction), tier and outcome",
            labelnames=("kind", "tier", "outcome"),
        )
        self.coalesced_batch_size = self.metrics.histogram(
            "repro_coalesced_batch_size",
            "Micro-batch sizes at flush",
            buckets=SIZE_BUCKETS,
        )
        self.gateway_designs = self.metrics.counter(
            "repro_gateway_designs_total",
            "Gateway admission outcomes, in designs",
            labelnames=("outcome",),
        )
        self.pool_events = self.metrics.counter(
            "repro_pool_events_total",
            "Supervised-pool lifecycle events",
            labelnames=("pool", "kind"),
        )
        self.worker_heartbeat_age = self.metrics.gauge(
            "repro_pool_worker_heartbeat_seconds",
            "Seconds since each pool worker last proved liveness",
            labelnames=("pool", "pid"),
        )
        self.http_requests = self.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests by route and status code",
            labelnames=("path", "status"),
        )
        self.http_seconds = self.metrics.histogram(
            "repro_http_request_seconds",
            "HTTP request wall-clock by route",
            labelnames=("path",),
        )
        # Deployment-plan instrumentation: which artifact served how many
        # designs in which role, and how far the challenger's predictions
        # drift from the champion's on the designs both arms predicted.
        self.deploy_requests = self.metrics.counter(
            "repro_deploy_requests_total",
            "Designs predicted per artifact and role (default/champion/challenger)",
            labelnames=("artifact", "role"),
        )
        self.deploy_artifact_designs = self.metrics.gauge(
            "repro_deploy_artifact_designs",
            "Lifetime designs predicted per artifact (all roles)",
            labelnames=("artifact",),
        )
        self.deploy_divergence = self.metrics.counter(
            "repro_deploy_divergence_total",
            "Champion/challenger comparisons whose predictions differed",
            labelnames=("rule",),
        )
        self.deploy_divergence_abs = self.metrics.histogram(
            "repro_deploy_divergence_abs",
            "Absolute champion-challenger prediction divergence per comparison",
            labelnames=("rule",),
            buckets=DIVERGENCE_BUCKETS,
        )

    # ------------------------------------------------------------ conveniences

    def observe_stage(self, stage: str, seconds: float) -> None:
        self.stage_seconds.labels(stage=stage).observe(seconds)

    def cache_event(self, kind: str, tier: str, outcome: str, seconds: float) -> None:
        self.cache_requests.labels(kind=kind, tier=tier, outcome=outcome).inc()
        self.observe_stage(f"cache_{tier}", seconds)

    def pool_event(self, kind: str, pool: str, **fields) -> dict:
        """Record one pool lifecycle event in the timeline, the counter and
        the structured log at once (the producers' single entry point)."""
        event = self.events.record(kind, pool=pool, **fields)
        self.pool_events.labels(pool=pool, kind=kind).inc()
        log_event(get_logger("supervisor"), f"pool.{kind}", pool=pool, **fields)
        return event

    def snapshot(self) -> dict:
        """JSON-safe snapshot of the registry plus tracer/event bookkeeping."""
        return {
            "metrics": self.metrics.snapshot(),
            "traces": self.tracer.stats(),
            "events": self.events.stats(),
        }


class ClusterObservability:
    """The cluster router's observability bundle: metrics + events + logger.

    Deliberately *not* an :class:`Observability`: the router proxies — the
    request's span tree lives in the replica that served it (``/v1/traces``
    on the replica's own port), so the router carries no tracer.  What it
    does own is the replica-lifecycle timeline (spawn / ready / eject /
    respawn / exit, served at the router's ``/v1/events``) and the routing
    metric families:

    ==============================================  ===========================
    instrument                                      what lands in it
    ==============================================  ===========================
    ``repro_cluster_requests_total{route,status}``  routed requests by outcome
    ``repro_cluster_request_seconds{route}``        router wall-clock per route
    ``repro_cluster_replica_designs_total{replica}``  designs routed per replica
    ``repro_cluster_retries_total{reason}``         failovers to the next replica
    ``repro_cluster_replica_events_total{...}``     lifecycle event counts
    ``repro_cluster_replica_up{replica}``           1 in the ring / 0 ejected
    ==============================================  ===========================
    """

    def __init__(self, *, event_ring: int = 512) -> None:
        self.metrics = MetricsRegistry()
        self.events = EventLog(maxlen=event_ring)
        self.logger = get_logger("cluster")
        self.requests = self.metrics.counter(
            "repro_cluster_requests_total",
            "Requests through the cluster router by route and status code",
            labelnames=("route", "status"),
        )
        self.request_seconds = self.metrics.histogram(
            "repro_cluster_request_seconds",
            "Router request wall-clock by route",
            labelnames=("route",),
        )
        self.replica_designs = self.metrics.counter(
            "repro_cluster_replica_designs_total",
            "Designs routed to each replica",
            labelnames=("replica",),
        )
        self.retries = self.metrics.counter(
            "repro_cluster_retries_total",
            "Requests retried on the next replica in ring order",
            labelnames=("reason",),
        )
        self.replica_events = self.metrics.counter(
            "repro_cluster_replica_events_total",
            "Replica lifecycle events",
            labelnames=("replica", "kind"),
        )
        self.replica_up = self.metrics.gauge(
            "repro_cluster_replica_up",
            "1 while the replica is in the hash ring, 0 while ejected",
            labelnames=("replica",),
        )

    def replica_event(self, kind: str, replica: str, **fields) -> dict:
        """Record one replica lifecycle event in the timeline, the counter
        and the structured log at once (mirrors ``Observability.pool_event``)."""
        event = self.events.record(kind, replica=replica, **fields)
        self.replica_events.labels(replica=replica, kind=kind).inc()
        log_event(self.logger, f"replica.{kind}", replica=replica, **fields)
        return event

    def snapshot(self) -> dict:
        """JSON-safe snapshot of the registry plus event bookkeeping."""
        return {
            "metrics": self.metrics.snapshot(),
            "events": self.events.stats(),
        }
