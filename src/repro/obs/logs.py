"""Structured JSON logging over the stdlib ``logging`` machinery.

Producers emit *events, not prose*: :func:`log_event` logs one record whose
payload is a flat dict (``event`` name + fields), and :class:`JsonFormatter`
renders each record as one JSON object per line, stamped with the calling
context's trace id (:func:`repro.obs.trace.current_trace_ids`) and request
id — so a log line, its trace in ``/v1/traces`` and its latency sample in
``/metrics`` all join on the same ids.

Handler policy follows stdlib convention: the library *always emits* records
on the ``repro.*`` logger hierarchy but never attaches handlers on import —
an application (or the demo, or CI) opts in with
:func:`configure_json_logging`, which is idempotent and honours
``$REPRO_OBS_LOG_DIR`` (append a JSON-lines file there; the CI workflow sets
it and uploads the file as a failure artifact).  Without configuration the
records cost one disabled-logger check and go nowhere.
"""

from __future__ import annotations

import json
import logging
import os
import time
from pathlib import Path

from repro.obs.trace import current_trace_ids

__all__ = [
    "JsonFormatter",
    "configure_json_logging",
    "get_logger",
    "log_event",
]

ROOT_LOGGER = "repro"

#: Marker attribute carrying the structured payload through ``extra=``.
_FIELDS_ATTR = "obs_fields"


def get_logger(name: str) -> logging.Logger:
    """A child of the ``repro`` logger (``get_logger("http")`` → ``repro.http``)."""
    if name.startswith(ROOT_LOGGER):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def log_event(
    logger: logging.Logger, event: str, *, level: int = logging.INFO, **fields
) -> None:
    """Emit one structured event record (fields must be JSON-safe).

    Cheap when nobody listens: the enabled-for check short-circuits before
    any formatting work, so unconfigured services pay nanoseconds per call.
    """
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={_FIELDS_ATTR: fields})


class JsonFormatter(logging.Formatter):
    """One JSON object per line: timestamp, level, logger, event, fields, ids."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        ids = current_trace_ids()
        if ids is not None:
            payload["trace_id"], payload["span_id"] = ids
        request_id = getattr(record, "request_id", None)
        if request_id is not None:
            payload["request_id"] = request_id
        fields = getattr(record, _FIELDS_ATTR, None)
        if fields:
            for key, value in fields.items():
                payload.setdefault(key, value)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = record.exc_info[0].__name__
        try:
            return json.dumps(payload, default=str, allow_nan=False)
        except ValueError:
            # A non-finite float snuck into a field: degrade that line, not
            # the logging pipeline.
            return json.dumps(
                {"ts": payload["ts"], "level": "error", "logger": record.name,
                 "event": "unserialisable_log_record"}
            )


def configure_json_logging(
    *,
    stream=None,
    directory: str | os.PathLike | None = None,
    level: int = logging.INFO,
) -> logging.Logger:
    """Attach JSON handlers to the ``repro`` logger hierarchy.  Idempotent.

    ``stream`` (e.g. ``sys.stderr``) gets a :class:`logging.StreamHandler`;
    ``directory`` (defaulting to ``$REPRO_OBS_LOG_DIR`` when set) gets an
    appending ``repro-obs.jsonl`` file handler.  Calling twice with the same
    targets adds nothing — safe from fixtures, demos and module mains alike.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(level)
    formatter = JsonFormatter()
    if directory is None:
        directory = os.environ.get("REPRO_OBS_LOG_DIR") or None
    targets: list[logging.Handler] = []
    if stream is not None:
        if not any(
            isinstance(h, logging.StreamHandler)
            and getattr(h, "stream", None) is stream
            and isinstance(h.formatter, JsonFormatter)
            for h in logger.handlers
        ):
            targets.append(logging.StreamHandler(stream))
    if directory is not None:
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        file_path = str(path / "repro-obs.jsonl")
        if not any(
            isinstance(h, logging.FileHandler)
            and getattr(h, "baseFilename", None) == os.path.abspath(file_path)
            for h in logger.handlers
        ):
            targets.append(logging.FileHandler(file_path, encoding="utf-8"))
    for handler in targets:
        handler.setFormatter(formatter)
        logger.addHandler(handler)
    return logger


class CollectingHandler(logging.Handler):
    """Test/demo helper: keeps formatted JSON lines in memory."""

    def __init__(self, level: int = logging.INFO) -> None:
        super().__init__(level)
        self.setFormatter(JsonFormatter())
        self.lines: list[str] = []

    def emit(self, record: logging.LogRecord) -> None:
        try:
            self.lines.append(self.format(record))
        except Exception:  # pragma: no cover - stdlib Handler contract
            self.handleError(record)

    def records(self) -> list[dict]:
        return [json.loads(line) for line in self.lines]


def _utc_stamp() -> str:  # pragma: no cover - debugging helper
    return time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())
