"""End-to-end request tracing: contextvar spans with a bounded recent ring.

One ``/v1/estimate`` request crosses four execution domains — the asyncio
event loop (HTTP parse, gateway admission), a gateway bridge thread (the
blocking service call), the micro-batcher's leader thread (the coalesced
flush) and worker *processes* (pooled featurisation / forward shards).
:class:`Tracer` stitches them into one tree of timed spans:

* the **current span** lives in a :mod:`contextvars` context variable, so a
  child span started anywhere in the same logical flow attaches to the right
  parent without any plumbing through call signatures;
* the **thread hop** (event loop → bridge thread) is covered by the gateway
  copying its context into the executor call
  (``contextvars.copy_context().run``), which carries the current span over;
* the **leader/follower handoff** of the micro-batcher is covered on both
  sides: the flush runs on the claiming member's thread under its own
  context (so the whole batch's work lands in the claimer's trace), and
  every other member's wait span records the claimer's trace id as a link;
* the **process hop** is covered by span *payloads*: pool workers time their
  shard and return a plain-dict span (name, pid, duration) alongside the
  results, and the parent grafts it into the live trace with
  :meth:`Tracer.attach_payloads` — task payloads stay picklable primitives.

Determinism contract: tracing never touches request data — spans are pure
side records — so predictions are bitwise-identical with tracing on or off
(enforced by ``tests/test_obs_determinism.py``).  A disabled tracer returns
one shared no-op span and skips all bookkeeping, keeping the off switch
close to free.

Completed traces land in a bounded ring (newest first out of
:meth:`Tracer.recent`); the HTTP layer serves it at ``GET /v1/traces``.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar

__all__ = ["Span", "Trace", "Tracer", "current_trace_ids"]

#: The (trace, span) pair of the calling context; shared by every tracer in
#: the process (a context only ever runs one request at a time, so one slot
#: is enough even with several services alive).
_CURRENT: ContextVar[tuple["Trace", "Span"] | None] = ContextVar(
    "repro_obs_current_span", default=None
)


def _new_id() -> str:
    """A 16-hex-char random id (no global counter: ids must be safe to mint
    concurrently from many threads and processes)."""
    return os.urandom(8).hex()


def current_trace_ids() -> tuple[str, str] | None:
    """``(trace_id, span_id)`` of the calling context, or ``None``.

    Module-level (not a tracer method) so the structured-log formatter can
    stamp trace ids onto records without holding a tracer reference.
    """
    current = _CURRENT.get()
    if current is None:
        return None
    trace, span = current
    return trace.trace_id, span.span_id


class Span:
    """One timed operation inside a trace (mutable while open)."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start_time",
        "duration_ms",
        "attributes",
        "status",
        "pid",
    )

    def __init__(
        self,
        name: str,
        *,
        span_id: str,
        parent_id: str | None,
        start_time: float,
        pid: int,
        attributes: dict | None = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_time = start_time
        self.duration_ms: float | None = None
        self.attributes: dict = attributes or {}
        self.status = "ok"
        self.pid = pid

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "duration_ms": self.duration_ms,
            "status": self.status,
            "pid": self.pid,
            "attributes": dict(self.attributes),
        }


class _NoopSpan:
    """The shared do-nothing span a disabled tracer hands out."""

    __slots__ = ()

    def set_attribute(self, key: str, value) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class Trace:
    """One request's tree of spans.

    Spans may be appended from several threads at once (a coalesced flush
    runs service stages on the claimer's thread while the gateway span still
    belongs to the event loop's context), so the span list is lock-guarded.
    """

    __slots__ = ("trace_id", "request_id", "spans", "_lock")

    def __init__(self, trace_id: str, request_id: str | None = None) -> None:
        self.trace_id = trace_id
        self.request_id = request_id
        self.spans: list[Span] = []
        self._lock = threading.Lock()

    def add(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    def as_dict(self) -> dict:
        """The trace as a nested tree (children grouped under their parent)."""
        with self._lock:
            spans = [span.as_dict() for span in self.spans]
        children: dict[str | None, list[dict]] = {}
        for span in spans:
            children.setdefault(span["parent_id"], []).append(span)

        def attach(span: dict) -> dict:
            span = dict(span)
            span["children"] = [attach(c) for c in children.get(span["span_id"], [])]
            return span

        roots = [attach(span) for span in children.get(None, [])]
        root = roots[0] if roots else None
        total_ms = root["duration_ms"] if root else None
        return {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "start_time": root["start_time"] if root else None,
            "duration_ms": total_ms,
            "num_spans": len(spans),
            "root": root,
            # A span whose parent never closed in this trace (e.g. a worker
            # payload grafted after its parent was pruned) must stay visible.
            "orphans": roots[1:] + [
                attach(s)
                for parent_id, group in children.items()
                if parent_id is not None
                and parent_id not in {span["span_id"] for span in spans}
                for s in group
            ],
        }


class Tracer:
    """Mints spans onto the context and keeps a ring of completed traces."""

    def __init__(self, *, ring_size: int = 128, enabled: bool = True) -> None:
        if ring_size < 1:
            raise ValueError("ring_size must be >= 1")
        self.enabled = enabled
        self._ring: deque[Trace] = deque(maxlen=ring_size)
        self._lock = threading.Lock()
        self.started = 0
        self.finished = 0

    # ------------------------------------------------------------------ spans

    @contextmanager
    def span(self, name: str, **attributes):
        """Open a child span of the calling context (a new trace at the root).

        Yields the :class:`Span` so callers can attach attributes discovered
        mid-stage; on exit the duration is sealed and — for the root span —
        the completed trace is pushed into the recent ring.  An exception
        marks the span ``error`` (with the exception type recorded) and
        propagates unchanged.
        """
        if not self.enabled:
            yield _NOOP_SPAN
            return
        parent = _CURRENT.get()
        if parent is None:
            trace = Trace(_new_id())
            parent_id = None
            with self._lock:
                self.started += 1
        else:
            trace, parent_span = parent
            parent_id = parent_span.span_id
        span = Span(
            name,
            span_id=_new_id(),
            parent_id=parent_id,
            start_time=time.time(),
            pid=os.getpid(),
            attributes=attributes,
        )
        trace.add(span)
        token = _CURRENT.set((trace, span))
        clock_start = time.perf_counter()
        try:
            yield span
        except BaseException as error:
            span.status = "error"
            span.attributes.setdefault("error", type(error).__name__)
            raise
        finally:
            span.duration_ms = (time.perf_counter() - clock_start) * 1e3
            _CURRENT.reset(token)
            if parent is None:
                with self._lock:
                    self._ring.append(trace)
                    self.finished += 1

    def active(self) -> bool:
        """Whether the calling context is inside a span of *some* trace."""
        return self.enabled and _CURRENT.get() is not None

    def current_ids(self) -> tuple[str, str] | None:
        if not self.enabled:
            return None
        return current_trace_ids()

    def set_request_id(self, request_id: str) -> None:
        """Stamp the calling context's trace with a request id (no-op outside)."""
        current = _CURRENT.get()
        if current is not None:
            current[0].request_id = request_id

    def attach_payloads(self, payloads: list[dict]) -> None:
        """Graft worker-process span payloads under the calling context's span.

        ``payloads`` are the plain dicts pool workers return alongside their
        shard results: ``{"name", "pid", "start_time", "duration_ms",
        "attributes"}``.  Ids are minted here (workers cannot coordinate id
        uniqueness cheaply) and the parent id is the current span's.
        """
        if not self.enabled:
            return
        current = _CURRENT.get()
        if current is None:
            return
        trace, parent = current
        for payload in payloads:
            span = Span(
                str(payload.get("name", "worker")),
                span_id=_new_id(),
                parent_id=parent.span_id,
                start_time=float(payload.get("start_time", time.time())),
                pid=int(payload.get("pid", 0)),
                attributes=dict(payload.get("attributes", {})),
            )
            span.duration_ms = float(payload.get("duration_ms", 0.0))
            trace.add(span)

    # ------------------------------------------------------------------- ring

    def recent(self, limit: int | None = None) -> list[dict]:
        """Completed traces, newest first, as JSON-safe trees."""
        with self._lock:
            traces = list(self._ring)
        traces.reverse()
        if limit is not None:
            traces = traces[: max(limit, 0)]
        return [trace.as_dict() for trace in traces]

    def find(self, trace_id: str) -> dict | None:
        with self._lock:
            traces = list(self._ring)
        for trace in reversed(traces):
            if trace.trace_id == trace_id:
                return trace.as_dict()
        return None

    def stats(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "started": self.started,
                "finished": self.finished,
                "ring": len(self._ring),
            }


def span_payload(
    name: str, start_wall: float, duration_s: float, **attributes
) -> dict:
    """Build the picklable span dict a pool worker ships back to the parent.

    ``start_wall`` is ``time.time()`` at shard start (wall clock: the only
    clock with a shared epoch across processes); ``duration_s`` should come
    from ``time.perf_counter()`` deltas.
    """
    return {
        "name": name,
        "pid": os.getpid(),
        "start_time": start_wall,
        "duration_ms": duration_s * 1e3,
        "attributes": attributes,
    }
