"""Histogram-capable metrics registry with Prometheus text exposition.

The service's original :class:`~repro.serve.service.ServiceMetrics` holds
sum-only counters — fine for throughput, useless for tail latency ("p99
featurisation is 40x the mean" is invisible in a sum).  This module is the
replacement substrate: a small registry of **counters**, **gauges** and
**fixed-bucket histograms**, each optionally split by a declared label set
(``stage="featurise"``), with two render paths:

* :meth:`MetricsRegistry.snapshot` — a JSON-safe dict for the existing JSON
  ``/metrics`` endpoint; histogram snapshots carry real quantile estimates
  (p50/p95/p99, linear interpolation inside the landing bucket) instead of
  means, and empty instruments report ``0.0`` / ``None`` — never ``NaN`` or
  ``Infinity``, which are invalid JSON per spec;
* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` + ``_bucket{le=...}`` / ``_sum`` /
  ``_count`` series) served when a ``/metrics`` client sends
  ``Accept: text/plain``.

Everything is stdlib + threading.Lock; observation cost is gated by
``benchmarks/test_obs_overhead.py`` (sub-microsecond per histogram observe).
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DIVERGENCE_BUCKETS",
    "SIZE_BUCKETS",
    "MetricsRegistry",
    "flatten_numeric",
    "json_safe",
]

#: Prometheus-style exponential latency buckets, in seconds: 100 us .. 10 s.
#: Fine enough at the bottom to resolve cache hits, wide enough at the top
#: for a cold featurisation batch.
DEFAULT_LATENCY_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Size buckets for count-shaped histograms (batch sizes, designs per call).
SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0)

#: Buckets for champion/challenger prediction divergence (absolute watts).
#: Power predictions sit in the 0.1–10 W range, so drift worth alerting on
#: starts around milliwatts; the zero-inclusive bottom bucket counts exact
#: agreement (e.g. a challenger that is the champion artifact re-registered).
DIVERGENCE_BUCKETS = (
    0.0,
    1e-6,
    1e-5,
    1e-4,
    1e-3,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def json_safe(value):
    """Recursively replace non-finite floats with ``None`` (strict-JSON safe).

    The HTTP layer serialises with ``allow_nan=False``; one stray
    ``float("nan")`` deep in a stats dict would turn a metrics scrape into a
    500.  Routing every exported snapshot through this keeps the contract
    structural instead of per-callsite.
    """
    if isinstance(value, dict):
        return {key: json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def flatten_numeric(prefix: str, value, out: dict | None = None) -> dict:
    """Flatten a nested stats dict into ``{metric_name: float}`` leaves.

    Used to project the service's existing JSON stats (cache tiers, pool
    supervisors, gateway counters) into the Prometheus exposition without
    double-accounting them in the registry.  Strings are skipped, booleans
    become 0/1 gauges, non-finite floats are dropped, and path keys are
    sanitised to the Prometheus name charset.
    """
    if out is None:
        out = {}
    if isinstance(value, dict):
        for key, item in value.items():
            part = re.sub(r"[^a-zA-Z0-9_]", "_", str(key))
            flatten_numeric(f"{prefix}_{part}" if prefix else part, item, out)
    elif isinstance(value, bool):
        out[prefix] = 1.0 if value else 0.0
    elif isinstance(value, (int, float)):
        number = float(value)
        if math.isfinite(number):
            out[prefix] = number
    return out


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"' for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


# ------------------------------------------------------------------ children


class Counter:
    """A monotonically increasing count (one labelled child of a family)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (pool sizes, heartbeat timestamps)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with quantile estimation.

    ``bounds`` are the inclusive upper bucket edges; an implicit ``+Inf``
    bucket catches the rest.  Quantiles interpolate linearly inside the
    landing bucket (the standard Prometheus ``histogram_quantile`` estimate),
    so they are approximations whose error is bounded by bucket width —
    real enough for p50/p95/p99 dashboards, cheap enough for the hot path.
    """

    __slots__ = ("bounds", "_counts", "_sum", "_count", "_min", "_max", "_lock")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def _quantile_locked(self, q: float) -> float | None:
        """Caller holds ``self._lock``.  ``None`` when empty (never NaN)."""
        if self._count == 0:
            return None
        rank = q * self._count
        seen = 0
        for index, count in enumerate(self._counts):
            if count == 0:
                continue
            if seen + count >= rank:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self.bounds[index] if index < len(self.bounds) else self._max
                )
                if upper < lower:  # +Inf bucket, bounded by observed max
                    upper = lower
                fraction = (rank - seen) / count
                return lower + (upper - lower) * fraction
            seen += count
        return self._max

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "mean": self._sum / self._count if self._count else 0.0,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "p50": self._quantile_locked(0.50),
                "p95": self._quantile_locked(0.95),
                "p99": self._quantile_locked(0.99),
            }

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_edge, cumulative_count)`` pairs, ``+Inf`` last."""
        with self._lock:
            counts = list(self._counts)
        cumulative = 0
        pairs: list[tuple[float, int]] = []
        for index, bound in enumerate(self.bounds):
            cumulative += counts[index]
            pairs.append((bound, cumulative))
        pairs.append((math.inf, cumulative + counts[-1]))
        return pairs

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count


# ------------------------------------------------------------------ families


class _Family:
    """One named metric with a declared label set; children per label tuple."""

    kind = "untyped"
    child_type: type = Counter

    def __init__(self, name: str, help_text: str, labelnames: tuple[str, ...]) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self._children: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _new_child(self):
        return self.child_type()

    def labels(self, *values, **kwvalues):
        """The child for one label-value tuple (created on first use)."""
        if kwvalues:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            try:
                values = tuple(str(kwvalues[name]) for name in self.labelnames)
            except KeyError as missing:
                raise ValueError(f"{self.name} is missing label {missing}") from None
            if len(kwvalues) != len(self.labelnames):
                unknown = set(kwvalues) - set(self.labelnames)
                raise ValueError(f"{self.name} has no labels {sorted(unknown)}")
        else:
            values = tuple(str(value) for value in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {values}"
            )
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._new_child()
                self._children[values] = child
            return child

    def _items(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return list(self._children.items())

    # Zero-label conveniences: the family doubles as its single child.

    def _default(self):
        if self.labelnames:
            raise ValueError(f"{self.name} requires labels {self.labelnames}")
        return self.labels()

    def snapshot(self):
        raise NotImplementedError


class CounterFamily(_Family):
    kind = "counter"
    child_type = Counter

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return self._default().value

    def snapshot(self) -> dict:
        if not self.labelnames:
            return {"value": self._default().value}
        return {
            "|".join(values): child.value for values, child in sorted(self._items())
        }


class GaugeFamily(_Family):
    kind = "gauge"
    child_type = Gauge

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return self._default().value

    def snapshot(self) -> dict:
        if not self.labelnames:
            return {"value": self._default().value}
        return {
            "|".join(values): child.value for values, child in sorted(self._items())
        }


class HistogramFamily(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...],
    ) -> None:
        super().__init__(name, help_text, labelnames)
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError("buckets must be a sorted, de-duplicated tuple")
        if buckets[-1] == math.inf:
            buckets = buckets[:-1]  # the +Inf bucket is implicit
        self.buckets = tuple(float(b) for b in buckets)

    def _new_child(self) -> Histogram:
        return Histogram(self.buckets)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def snapshot(self) -> dict:
        if not self.labelnames:
            return self._default().snapshot()
        return {
            "|".join(values): child.snapshot()
            for values, child in sorted(self._items())
        }


# ------------------------------------------------------------------ registry


class MetricsRegistry:
    """Process-local registry of metric families, one per service."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------ registration

    def _register(self, family: _Family) -> _Family:
        if not _NAME_RE.match(family.name):
            raise ValueError(f"invalid metric name {family.name!r}")
        for label in family.labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        with self._lock:
            existing = self._families.get(family.name)
            if existing is not None:
                if (
                    type(existing) is not type(family)
                    or existing.labelnames != family.labelnames
                ):
                    raise ValueError(
                        f"metric {family.name!r} re-registered with a different "
                        "type or label set"
                    )
                return existing
            self._families[family.name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labelnames: tuple[str, ...] = ()
    ) -> CounterFamily:
        return self._register(CounterFamily(name, help_text, tuple(labelnames)))

    def gauge(
        self, name: str, help_text: str = "", labelnames: tuple[str, ...] = ()
    ) -> GaugeFamily:
        return self._register(GaugeFamily(name, help_text, tuple(labelnames)))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> HistogramFamily:
        return self._register(
            HistogramFamily(name, help_text, tuple(labelnames), tuple(buckets))
        )

    # -------------------------------------------------------------- rendering

    def snapshot(self) -> dict:
        """JSON-safe view of every family (strict-JSON: no NaN/Infinity)."""
        with self._lock:
            families = list(self._families.values())
        return json_safe(
            {family.name: family.snapshot() for family in families}
        )

    def render_prometheus(self, extra_gauges: dict[str, float] | None = None) -> str:
        """The Prometheus text exposition format (version 0.0.4).

        ``extra_gauges`` lets the caller project pre-existing JSON stats
        (flattened with :func:`flatten_numeric`) into the scrape as plain
        gauges without registering them.
        """
        with self._lock:
            families = list(self._families.values())
        lines: list[str] = []
        for family in families:
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            if isinstance(family, HistogramFamily):
                items = family._items()
                if not items and not family.labelnames:
                    items = [((), family.labels())]
                for values, child in sorted(items):
                    for bound, cumulative in child.cumulative_buckets():
                        le = _labels_text(
                            family.labelnames,
                            values,
                            extra=f'le="{_format_value(bound)}"',
                        )
                        lines.append(f"{family.name}_bucket{le} {cumulative}")
                    labels = _labels_text(family.labelnames, values)
                    lines.append(f"{family.name}_sum{labels} {repr(child.sum)}")
                    lines.append(f"{family.name}_count{labels} {child.count}")
            else:
                items = family._items()
                if not items and not family.labelnames:
                    items = [((), family.labels())]
                for values, child in sorted(items):
                    labels = _labels_text(family.labelnames, values)
                    lines.append(
                        f"{family.name}{labels} {_format_value(child.value)}"
                    )
        for name in sorted(extra_gauges or {}):
            value = extra_gauges[name]
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                continue
            if not _NAME_RE.match(name):
                continue
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(float(value))}")
        return "\n".join(lines) + "\n"
