"""Optimisers: Adam (used for all GNN training) and SGD (tests / baselines)."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter


class Optimizer:
    """Base optimiser working on a list of parameters."""

    def __init__(self, parameters: list[Parameter]) -> None:
        if not parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.parameters = list(parameters)

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(
        self, parameters: list[Parameter], lr: float = 1e-2, momentum: float = 0.0
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.lr * parameter.grad
            parameter.data = parameter.data + velocity


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 5e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            self._m[index] = self.beta1 * self._m[index] + (1.0 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1.0 - self.beta2) * grad**2
            m_hat = self._m[index] / bias1
            v_hat = self._v[index] / bias2
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
