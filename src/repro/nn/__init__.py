"""Neural-network substrate: numpy autograd, layers, optimiser and losses.

PyTorch / PyTorch Geometric are not available in this offline reproduction, so
this package provides the minimal pieces the GNN models need: a reverse-mode
autograd :class:`~repro.nn.tensor.Tensor` over numpy arrays (matmul, ReLU,
dropout, concatenation, gather / segment-sum for message passing), standard
layers, Adam, and the MAPE regression loss the paper trains with.
"""

from repro.nn.tensor import Tensor, no_grad
from repro.nn.layers import Linear, MLP, Dropout, Module, Parameter, Sequential, ReLU
from repro.nn.optim import Adam, SGD
from repro.nn.losses import mape_loss, mse_loss, mae_loss
from repro.nn.init import glorot_uniform, zeros_init

__all__ = [
    "Tensor",
    "no_grad",
    "Linear",
    "MLP",
    "Dropout",
    "Module",
    "Parameter",
    "Sequential",
    "ReLU",
    "Adam",
    "SGD",
    "mape_loss",
    "mse_loss",
    "mae_loss",
    "glorot_uniform",
    "zeros_init",
]
