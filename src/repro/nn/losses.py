"""Regression losses.

The paper trains HEC-GNN "via regression to minimize the mean average
percentage error loss"; MAPE is therefore the primary loss, with MSE and MAE
available for tests and ablations.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def _as_target(targets) -> Tensor:
    if isinstance(targets, Tensor):
        return targets
    return Tensor(np.asarray(targets, dtype=np.float64))


def mape_loss(predictions: Tensor, targets) -> Tensor:
    """Mean absolute percentage error (as a fraction, not percent)."""
    targets = _as_target(targets)
    if np.any(targets.data == 0):
        raise ValueError("MAPE is undefined for zero targets")
    return ((predictions - targets) / targets).abs().mean()


def mse_loss(predictions: Tensor, targets) -> Tensor:
    targets = _as_target(targets)
    return ((predictions - targets) ** 2).mean()


def mae_loss(predictions: Tensor, targets) -> Tensor:
    targets = _as_target(targets)
    return (predictions - targets).abs().mean()
