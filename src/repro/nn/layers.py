"""Layers and module plumbing built on the autograd tensor.

:class:`Module` provides parameter registration and traversal (so optimisers
can collect every trainable tensor), plus the train / eval mode switch used by
dropout.  :class:`Linear`, :class:`Dropout`, :class:`ReLU`, :class:`Sequential`
and :class:`MLP` are the building blocks used by the GNN heads and the
metadata embedding branch.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import glorot_uniform, zeros_init
from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with parameter registration and train/eval mode."""

    def __init__(self) -> None:
        self.training = True

    # ---------------------------------------------------------------- traversal

    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module and its sub-modules."""
        found: list[Parameter] = []
        seen: set[int] = set()

        def visit(obj) -> None:
            if isinstance(obj, Parameter):
                if id(obj) not in seen:
                    seen.add(id(obj))
                    found.append(obj)
            elif isinstance(obj, Module):
                for value in vars(obj).values():
                    visit(value)
            elif isinstance(obj, (list, tuple)):
                for value in obj:
                    visit(value)
            elif isinstance(obj, dict):
                for value in obj.values():
                    visit(value)

        visit(self)
        return found

    def modules(self) -> list["Module"]:
        found: list[Module] = []

        def visit(obj) -> None:
            if isinstance(obj, Module):
                found.append(obj)
                for value in vars(obj).values():
                    visit(value)
            elif isinstance(obj, (list, tuple)):
                for value in obj:
                    visit(value)
            elif isinstance(obj, dict):
                for value in obj.values():
                    visit(value)

        visit(self)
        return found

    # -------------------------------------------------------------------- modes

    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------ (de)serialise

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of parameter index to value (sufficient for ensembling)."""
        return {f"param_{i}": p.data.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        parameters = self.parameters()
        if len(state) != len(parameters):
            raise ValueError(
                f"state dict has {len(state)} entries but the module has "
                f"{len(parameters)} parameters"
            )
        for i, parameter in enumerate(parameters):
            value = state[f"param_{i}"]
            if value.shape != parameter.data.shape:
                raise ValueError(f"shape mismatch for parameter {i}")
            parameter.data = value.copy()

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - interface
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        name: str = "linear",
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            glorot_uniform(in_features, out_features, rng), name=f"{name}.weight"
        )
        self.bias = Parameter(zeros_init(out_features), name=f"{name}.bias") if bias else None

    def forward(self, inputs: Tensor) -> Tensor:
        # Fused affine: one backend kernel at inference, the recorded
        # ``@`` + ``+`` composition (same arithmetic) under autograd.
        return inputs.linear(self.weight, self.bias)


class ReLU(Module):
    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.relu()


class Dropout(Module):
    """Inverted dropout driven by an explicit generator for reproducibility."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.dropout(self.rate, self.rng, self.training)


class Sequential(Module):
    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, inputs: Tensor) -> Tensor:
        out = inputs
        for layer in self.layers:
            out = layer(out)
        return out


class MLP(Module):
    """Multi-layer perceptron with ReLU activations between layers."""

    def __init__(
        self,
        dims: list[int],
        rng: np.random.Generator,
        dropout: float = 0.0,
        name: str = "mlp",
    ) -> None:
        super().__init__()
        if len(dims) < 2:
            raise ValueError("an MLP needs at least input and output dimensions")
        layers: list[Module] = []
        for index in range(len(dims) - 1):
            layers.append(Linear(dims[index], dims[index + 1], rng, name=f"{name}.{index}"))
            if index < len(dims) - 2:
                layers.append(ReLU())
                if dropout > 0:
                    layers.append(Dropout(dropout, rng))
        self.network = Sequential(*layers)

    def forward(self, inputs: Tensor) -> Tensor:
        return self.network(inputs)
