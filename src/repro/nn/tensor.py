"""Reverse-mode automatic differentiation over numpy arrays.

The :class:`Tensor` class wraps a numpy array, records the operations applied
to it, and back-propagates gradients through the recorded graph when
``backward`` is called on a scalar result.  Only the operations required by
the GNN models are implemented:

* element-wise add / sub / mul / div and scalar variants (with broadcasting),
* matrix multiplication,
* ReLU, absolute value, power,
* reductions (sum / mean),
* row gather (``x[index]``) and segment-sum (scatter-add), the two primitives
  of message passing and graph pooling,
* concatenation along the feature axis,
* dropout, and
* the fused forward kernels ``linear`` (affine) and ``add_relu``.

A module-level ``no_grad`` context manager disables graph recording during
inference.

Forward-path data kernels (matmul, add/mul, ReLU and the fused ops, gather,
scatter-add) route through the active compute backend
(:func:`repro.backend.active_backend`), so the same model code runs on the
``numpy`` reference backend or the workspace-pooled ``optimized`` one.  The
backward closures stay plain numpy: gradients are a training-only path and
the backends are defined (and tested) to be bitwise-identical on the forward
kernels, so training results do not depend on the selection either way.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable

import numpy as np

from repro.backend import active_backend

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient tracking (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def grad_enabled() -> bool:
    """Whether operations are currently recorded on the autograd tape.

    Inference-only fast paths (the grouped-relation forward, the fused
    backend kernels) key off this: they have no backward implementation, so
    they must only replace the composed ops when nothing records gradients.
    """
    return _GRAD_ENABLED


def scatter_add_rows(
    values: np.ndarray, index: np.ndarray, num_segments: int
) -> np.ndarray:
    """Sum rows of ``values`` into ``num_segments`` buckets given by ``index``.

    Delegates to the active compute backend's ``scatter_add`` kernel; the
    reference semantics (``np.bincount``-based, bitwise-equal to
    ``np.add.at`` because both add contributions in row order) are defined in
    :class:`repro.backend.base.ArrayBackend`.
    """
    return active_backend().scatter_add(values, index, num_segments)


def _unbroadcast(gradient: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``gradient`` back to ``shape`` after numpy broadcasting."""
    if gradient.shape == shape:
        return gradient
    # Sum over prepended axes.
    while gradient.ndim > len(shape):
        gradient = gradient.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, dim in enumerate(shape):
        if dim == 1 and gradient.shape[axis] != 1:
            gradient = gradient.sum(axis=axis, keepdims=True)
    return gradient.reshape(shape)


class Tensor:
    """A numpy array with an autograd tape."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str = "",
    ) -> None:
        # float64 is the canonical dtype; float32 passes through unchanged so
        # an accelerator-tier backend (``REPRO_BACKEND_ACCEL=f32``) can flow
        # single precision through the whole inference forward.  Training
        # never sees float32: parameters and inputs are float64 and the
        # backends only emit float32 inside inference forward scopes.
        array = np.asarray(data)
        if array.dtype != np.float32:
            array = np.asarray(array, dtype=np.float64)
        self.data = array
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------ basics

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    # -------------------------------------------------------------- graph glue

    @staticmethod
    def _as_tensor(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, parents: Iterable["Tensor"], backward) -> "Tensor":
        parents = tuple(parents)
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    def _accumulate(self, gradient: np.ndarray) -> None:
        if self.grad is None:
            self.grad = gradient.astype(np.float64, copy=True)
        else:
            self.grad = self.grad + gradient

    def backward(self, gradient: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor (must be scalar unless ``gradient`` given)."""
        if gradient is None:
            if self.size != 1:
                raise ValueError("backward() without a gradient requires a scalar tensor")
            gradient = np.ones_like(self.data)
        gradient = np.asarray(gradient, dtype=np.float64)

        topo: list[Tensor] = []
        visited: set[int] = set()

        def build(node: "Tensor") -> None:
            if id(node) in visited or not node.requires_grad:
                return
            visited.add(id(node))
            for parent in node._parents:
                build(parent)
            topo.append(node)

        build(self)
        self._accumulate(gradient)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # -------------------------------------------------------------- arithmetic

    def __add__(self, other) -> "Tensor":
        other = self._as_tensor(other)
        out_data = active_backend().add(self.data, other.data)

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(gradient, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(gradient, other.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other) -> "Tensor":
        return self + (-self._as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return self._as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._as_tensor(other)
        out_data = active_backend().mul(self.data, other.data)

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(gradient * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(gradient * self.data, other.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._as_tensor(other)
        out_data = self.data / other.data

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(gradient / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-gradient * self.data / (other.data**2), other.shape)
                )

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._as_tensor(other)
        out_data = active_backend().matmul(self.data, other.data)

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ gradient)

        return self._make(out_data, (self, other), backward)

    # -------------------------------------------------------------- activations

    def relu(self) -> "Tensor":
        if not _GRAD_ENABLED:
            return Tensor(active_backend().relu(self.data))
        mask = self.data > 0
        out_data = self.data * mask

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient * mask)

        return self._make(out_data, (self,), backward)

    def add_relu(self, other) -> "Tensor":
        """Fused ``relu(self + other)`` — one backend kernel at inference.

        Bitwise-identical to the composed ``(self + other).relu()`` on both
        paths: the forward arithmetic is the same mask multiplication, and
        the single backward closure propagates exactly the gradients the two
        composed closures would.
        """
        other = self._as_tensor(other)
        if not _GRAD_ENABLED:
            return Tensor(active_backend().add_relu(self.data, other.data))
        out_data = self.data + other.data
        mask = out_data > 0
        out_data = out_data * mask

        def backward(gradient: np.ndarray) -> None:
            masked = gradient * mask
            if self.requires_grad:
                self._accumulate(_unbroadcast(masked, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(masked, other.shape))

        return self._make(out_data, (self, other), backward)

    def linear(self, weight: "Tensor", bias: "Tensor | None" = None) -> "Tensor":
        """Fused affine ``self @ weight + bias`` (backend kernel at inference).

        Under autograd this composes the recorded ``@`` and ``+`` ops, so the
        tape (and therefore training) is unchanged; without gradients it runs
        the backend's fused kernel, which computes the same expression.
        """
        if not _GRAD_ENABLED:
            return Tensor(
                active_backend().linear(
                    self.data, weight.data, None if bias is None else bias.data
                )
            )
        out = self @ weight
        return out if bias is None else out + bias

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient * sign)

        return self._make(out_data, (self,), backward)

    # --------------------------------------------------------------- reductions

    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(gradient: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(gradient)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        return self._make(out_data, (self,), backward)

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        count = self.size if axis is None else self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    # ----------------------------------------------------------- graph primitives

    def gather_rows(self, index: np.ndarray) -> "Tensor":
        """Select rows ``self[index]`` (message gathering along edges)."""
        index = np.asarray(index, dtype=np.int64)
        out_data = active_backend().gather_rows(self.data, index)

        def backward(gradient: np.ndarray) -> None:
            if not self.requires_grad:
                return
            self._accumulate(scatter_add_rows(gradient, index, self.data.shape[0]))

        return self._make(out_data, (self,), backward)

    def segment_sum(self, index: np.ndarray, num_segments: int) -> "Tensor":
        """Scatter-add rows into ``num_segments`` buckets (neighbourhood aggregation)."""
        index = np.asarray(index, dtype=np.int64)
        if index.shape[0] != self.shape[0]:
            raise ValueError("segment index length must match the number of rows")
        out_data = scatter_add_rows(self.data, index, num_segments)

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient[index])

        return self._make(out_data, (self,), backward)

    def concat(self, other: "Tensor", axis: int = 1) -> "Tensor":
        other = self._as_tensor(other)
        out_data = np.concatenate([self.data, other.data], axis=axis)
        split = self.data.shape[axis]

        def backward(gradient: np.ndarray) -> None:
            left, right = np.split(gradient, [split], axis=axis)
            if self.requires_grad:
                self._accumulate(left)
            if other.requires_grad:
                other._accumulate(right)

        return self._make(out_data, (self, other), backward)

    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(*shape)
        original = self.shape

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient.reshape(original))

        return self._make(out_data, (self,), backward)

    def dropout(self, rate: float, rng: np.random.Generator, training: bool) -> "Tensor":
        """Inverted dropout; identity when not training or rate is 0."""
        if not training or rate <= 0.0:
            return self
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        mask = (rng.random(self.shape) >= rate) / (1.0 - rate)
        out_data = self.data * mask

        def backward(gradient: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(gradient * mask)

        return self._make(out_data, (self,), backward)


def stack_rows(tensors: list[Tensor]) -> Tensor:
    """Stack 1-D tensors into a matrix, preserving gradients."""
    if not tensors:
        raise ValueError("cannot stack an empty list")
    data = np.stack([t.data for t in tensors], axis=0)
    parents = tuple(tensors)

    def backward(gradient: np.ndarray) -> None:
        for row, tensor in enumerate(parents):
            if tensor.requires_grad:
                tensor._accumulate(gradient[row])

    requires = _GRAD_ENABLED and any(t.requires_grad for t in parents)
    if not requires:
        return Tensor(data)
    return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)
