"""Weight initialisers."""

from __future__ import annotations

import numpy as np


def glorot_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot / Xavier uniform initialisation, the PyG default for GNN weights."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros_init(*shape: int) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)
