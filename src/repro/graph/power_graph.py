"""Mutable intermediate graph used by the construction passes.

The construction flow starts from the instruction-level DFG, then mutates it:
buffer insertion adds buffer nodes and removes address-generation nodes,
datapath merging fuses nodes bound to the same functional unit, and trimming
bypasses trivial cast nodes.  :class:`PowerGraph` supports those mutations
while keeping the per-node / per-edge activity statistics consistent (merged
nodes and parallel edges accumulate their statistics), before the feature
encoder freezes everything into an immutable
:class:`~repro.graph.hetero_graph.HeteroGraph`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.activity.tracer import ValueStreamStats


@dataclass
class PowerGraphNode:
    """One node: an operation, or a buffer inserted by buffer insertion."""

    node_id: int
    kind: str  # "op" or "buffer"
    opcode: str
    category: str
    is_arithmetic: bool
    bitwidth: int
    result_stats: ValueStreamStats = field(default_factory=lambda: ValueStreamStats(0))
    input_stats: ValueStreamStats = field(default_factory=lambda: ValueStreamStats(0))
    buffer_name: str | None = None
    buffer_kind: str = ""
    buffer_bits: int = 0
    partition_factor: int = 1
    merged_count: int = 1
    name: str = ""

    def absorb(self, other: "PowerGraphNode") -> None:
        """Merge ``other`` into this node (datapath merging)."""
        self.result_stats = self.result_stats.merged_with(other.result_stats)
        self.input_stats = self.input_stats.merged_with(other.input_stats)
        self.bitwidth = max(self.bitwidth, other.bitwidth)
        self.buffer_bits += other.buffer_bits if other.kind == "buffer" else 0
        self.merged_count += other.merged_count


@dataclass
class PowerGraphEdge:
    """One directed edge with its source / sink activity statistics."""

    src: int
    dst: int
    src_stats: ValueStreamStats = field(default_factory=lambda: ValueStreamStats(0))
    snk_stats: ValueStreamStats = field(default_factory=lambda: ValueStreamStats(0))
    bitwidth: int = 0
    merged_count: int = 1

    def absorb(self, other: "PowerGraphEdge") -> None:
        """Merge a parallel edge into this one."""
        self.src_stats = self.src_stats.merged_with(other.src_stats)
        self.snk_stats = self.snk_stats.merged_with(other.snk_stats)
        self.bitwidth = max(self.bitwidth, other.bitwidth)
        self.merged_count += other.merged_count


class PowerGraph:
    """Mutable directed graph with activity-annotated nodes and edges."""

    def __init__(self) -> None:
        self.nodes: dict[int, PowerGraphNode] = {}
        self.edges: dict[tuple[int, int], PowerGraphEdge] = {}
        self._next_id = 0

    # ------------------------------------------------------------- mutation

    def new_node_id(self) -> int:
        node_id = self._next_id
        self._next_id += 1
        return node_id

    def add_node(self, node: PowerGraphNode) -> PowerGraphNode:
        if node.node_id in self.nodes:
            raise ValueError(f"node {node.node_id} already exists")
        self.nodes[node.node_id] = node
        self._next_id = max(self._next_id, node.node_id + 1)
        return node

    def add_edge(self, edge: PowerGraphEdge) -> PowerGraphEdge:
        """Insert an edge, merging statistics if a parallel edge already exists."""
        if edge.src not in self.nodes or edge.dst not in self.nodes:
            raise KeyError(f"edge ({edge.src}, {edge.dst}) references a missing node")
        if edge.src == edge.dst:
            return self.edges.get((edge.src, edge.dst), edge)
        key = (edge.src, edge.dst)
        existing = self.edges.get(key)
        if existing is None:
            self.edges[key] = edge
            return edge
        existing.absorb(edge)
        return existing

    def remove_node(self, node_id: int) -> None:
        if node_id not in self.nodes:
            raise KeyError(f"no node {node_id}")
        del self.nodes[node_id]
        self.edges = {
            key: edge
            for key, edge in self.edges.items()
            if edge.src != node_id and edge.dst != node_id
        }

    def merge_nodes(self, keep_id: int, remove_id: int) -> None:
        """Fuse ``remove_id`` into ``keep_id``, redirecting its edges."""
        if keep_id == remove_id:
            return
        keep = self.nodes[keep_id]
        remove = self.nodes[remove_id]
        keep.absorb(remove)

        redirected: list[PowerGraphEdge] = []
        for (src, dst), edge in list(self.edges.items()):
            if src != remove_id and dst != remove_id:
                continue
            del self.edges[(src, dst)]
            new_src = keep_id if src == remove_id else src
            new_dst = keep_id if dst == remove_id else dst
            if new_src == new_dst:
                continue
            redirected.append(
                PowerGraphEdge(
                    src=new_src,
                    dst=new_dst,
                    src_stats=edge.src_stats,
                    snk_stats=edge.snk_stats,
                    bitwidth=edge.bitwidth,
                    merged_count=edge.merged_count,
                )
            )
        del self.nodes[remove_id]
        for edge in redirected:
            self.add_edge(edge)

    # ------------------------------------------------------------- traversal

    def predecessors(self, node_id: int) -> list[int]:
        return [src for (src, dst) in self.edges if dst == node_id]

    def successors(self, node_id: int) -> list[int]:
        return [dst for (src, dst) in self.edges if src == node_id]

    def in_edges(self, node_id: int) -> list[PowerGraphEdge]:
        return [edge for edge in self.edges.values() if edge.dst == node_id]

    def out_edges(self, node_id: int) -> list[PowerGraphEdge]:
        return [edge for edge in self.edges.values() if edge.src == node_id]

    def nodes_where(self, predicate) -> list[PowerGraphNode]:
        return [node for node in self.nodes.values() if predicate(node)]

    # ------------------------------------------------------------------ info

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def __repr__(self) -> str:
        return f"PowerGraph(nodes={self.num_nodes}, edges={self.num_edges})"
