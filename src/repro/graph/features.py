"""Feature annotation: power graph -> numeric node / edge / metadata features.

Node features follow the paper: one-hot IR operation type, one-hot opcode,
plus numeric activity features (overall activation rate, input / output /
overall switching activity).  We extend the numeric block with the datapath
bit width, buffer size and merge multiplicity, which are available at HLS time
and carry the memory-resource annotation the paper attaches to buffer nodes.

Edge features are the four-dimensional activity vector of Eq. (2)/(3):
switching activity and activation rate of the source and sink value streams.

The metadata vector comes from :meth:`repro.hls.report.HLSReport.metadata_vector`.
"""

from __future__ import annotations

import numpy as np

from repro.graph.hetero_graph import HeteroGraph, relation_type_index
from repro.graph.power_graph import PowerGraph, PowerGraphNode
from repro.hls.report import HLSReport
from repro.ir.instructions import Opcode

#: Version of the featurisation scheme.  Any change to the feature layout
#: below (one-hot vocabularies, numeric blocks, edge features, metadata) must
#: bump this constant: it is part of the serving cache's content address and of
#: registry manifests, so stale cached graphs and incompatible model artifacts
#: are invalidated rather than silently mixed.
FEATURE_VERSION: int = 1

#: Operation-type categories used for the one-hot type feature.
NODE_TYPE_CATEGORIES: tuple[str, ...] = (
    "memory",
    "float_arith",
    "int_arith",
    "compare",
    "cast",
    "bitwise",
    "control",
    "buffer",
)

#: Opcode vocabulary: every IR opcode plus the two buffer kinds.
OPCODE_VOCABULARY: tuple[str, ...] = tuple(op.value for op in Opcode) + (
    "buffer_io",
    "buffer_internal",
)

#: Names of the numeric node features (appended after the one-hot blocks).
NODE_NUMERIC_FEATURES: tuple[str, ...] = (
    "activation_rate",
    "input_switching",
    "output_switching",
    "overall_switching",
    "log_bitwidth",
    "log_buffer_bits",
    "log_merged_count",
    "partition_factor",
)

#: Names of the edge features (Eq. 2 / Eq. 3, source and sink directions).
EDGE_FEATURE_NAMES: tuple[str, ...] = ("sa_src", "sa_snk", "ar_src", "ar_snk")


class FeatureEncoder:
    """Encodes power graphs into :class:`HeteroGraph` samples."""

    def __init__(self) -> None:
        self._type_index = {name: i for i, name in enumerate(NODE_TYPE_CATEGORIES)}
        self._opcode_index = {name: i for i, name in enumerate(OPCODE_VOCABULARY)}

    # ------------------------------------------------------------------ sizes

    @property
    def node_feature_dim(self) -> int:
        return len(NODE_TYPE_CATEGORIES) + len(OPCODE_VOCABULARY) + len(NODE_NUMERIC_FEATURES)

    @property
    def edge_feature_dim(self) -> int:
        return len(EDGE_FEATURE_NAMES)

    # ----------------------------------------------------------------- encode

    def encode(
        self,
        graph: PowerGraph,
        report: HLSReport,
        baseline_report: HLSReport | None = None,
        use_edge_features: bool = True,
    ) -> HeteroGraph:
        """Freeze ``graph`` into an immutable :class:`HeteroGraph`."""
        latency = max(1, report.latency_cycles)
        node_ids = sorted(graph.nodes)
        index_of = {node_id: i for i, node_id in enumerate(node_ids)}

        node_features = np.zeros((len(node_ids), self.node_feature_dim))
        node_is_arithmetic = np.zeros(len(node_ids), dtype=bool)
        node_names: list[str] = []
        for node_id in node_ids:
            node = graph.nodes[node_id]
            row = index_of[node_id]
            node_features[row] = self._node_feature_row(node, latency)
            node_is_arithmetic[row] = node.is_arithmetic
            node_names.append(node.name or f"n{node_id}")

        num_edges = graph.num_edges
        edge_index = np.zeros((2, num_edges), dtype=np.int64)
        edge_features = np.zeros((num_edges, self.edge_feature_dim))
        edge_types = np.zeros(num_edges, dtype=np.int64)
        for position, ((src, dst), edge) in enumerate(sorted(graph.edges.items())):
            edge_index[0, position] = index_of[src]
            edge_index[1, position] = index_of[dst]
            if use_edge_features:
                edge_features[position] = [
                    edge.src_stats.switching_activity(latency),
                    edge.snk_stats.switching_activity(latency),
                    edge.src_stats.activation_rate(latency),
                    edge.snk_stats.activation_rate(latency),
                ]
            edge_types[position] = relation_type_index(
                graph.nodes[src].is_arithmetic, graph.nodes[dst].is_arithmetic
            )

        metadata = report.metadata_vector(baseline_report)
        return HeteroGraph(
            node_features=node_features,
            edge_index=edge_index,
            edge_features=edge_features,
            edge_types=edge_types,
            metadata=metadata,
            node_is_arithmetic=node_is_arithmetic,
            node_names=node_names,
        )

    # --------------------------------------------------------------- internals

    def _node_feature_row(self, node: PowerGraphNode, latency: int) -> np.ndarray:
        type_onehot = np.zeros(len(NODE_TYPE_CATEGORIES))
        category = "buffer" if node.kind == "buffer" else node.category
        type_onehot[self._type_index.get(category, self._type_index["control"])] = 1.0

        opcode_onehot = np.zeros(len(OPCODE_VOCABULARY))
        if node.kind == "buffer":
            opcode_key = "buffer_io" if node.buffer_kind == "io" else "buffer_internal"
        else:
            opcode_key = node.opcode
        opcode_onehot[self._opcode_index.get(opcode_key, 0)] = 1.0

        activation_rate = node.result_stats.activation_rate(latency)
        input_sa = node.input_stats.switching_activity(latency)
        output_sa = node.result_stats.switching_activity(latency)
        if node.kind == "buffer":
            # Buffers do not produce values themselves in the IR trace; their
            # activity is carried by the adjacent load/store edges, so the node
            # level features describe the memory itself.
            activation_rate = node.input_stats.activation_rate(latency)
        numeric = np.array(
            [
                activation_rate,
                input_sa,
                output_sa,
                input_sa + output_sa,
                np.log1p(node.bitwidth),
                np.log1p(node.buffer_bits),
                np.log1p(node.merged_count),
                float(node.partition_factor),
            ]
        )
        return np.concatenate([type_onehot, opcode_onehot, numeric])
