"""Heterogeneous, directed graph container with edge features.

This is the numpy analogue of a PyTorch-Geometric ``Data`` object, specialised
for PowerGear's graphs: node features, directed edges with four-dimensional
activity features, an edge relation type per edge (A→A, A→N, N→A, N→N) and a
global metadata vector from the HLS report.

Graphs can be batched (disjoint union with an index vector mapping nodes to
their graph), which is how the GNN training loop processes minibatches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Relation types of the heterogeneous graph, indexed by (src_arith, dst_arith).
RELATION_TYPES: tuple[str, ...] = ("A->A", "A->N", "N->A", "N->N")


def relation_type_index(src_is_arithmetic: bool, dst_is_arithmetic: bool) -> int:
    """Map the arithmetic/non-arithmetic classes of an edge's endpoints to its relation index."""
    if src_is_arithmetic and dst_is_arithmetic:
        return 0
    if src_is_arithmetic and not dst_is_arithmetic:
        return 1
    if not src_is_arithmetic and dst_is_arithmetic:
        return 2
    return 3


@dataclass
class HeteroGraph:
    """One graph sample (or a batch of disjoint graphs)."""

    node_features: np.ndarray
    edge_index: np.ndarray
    edge_features: np.ndarray
    edge_types: np.ndarray
    metadata: np.ndarray
    node_is_arithmetic: np.ndarray
    node_names: list[str] = field(default_factory=list)
    batch: np.ndarray | None = None
    num_graphs: int = 1

    def __post_init__(self) -> None:
        self.node_features = np.asarray(self.node_features, dtype=np.float64)
        self.edge_index = np.asarray(self.edge_index, dtype=np.int64).reshape(2, -1)
        self.edge_features = np.asarray(self.edge_features, dtype=np.float64)
        self.edge_types = np.asarray(self.edge_types, dtype=np.int64).reshape(-1)
        self.metadata = np.asarray(self.metadata, dtype=np.float64)
        self.node_is_arithmetic = np.asarray(self.node_is_arithmetic, dtype=bool).reshape(-1)
        if self.edge_features.size == 0:
            self.edge_features = self.edge_features.reshape(0, 0)
        if self.edge_index.shape[1] != self.edge_types.shape[0]:
            raise ValueError("edge_index and edge_types disagree on the number of edges")
        if self.edge_index.shape[1] != self.edge_features.shape[0] and self.edge_features.size:
            raise ValueError("edge_index and edge_features disagree on the number of edges")
        if self.edge_index.size and self.edge_index.max() >= self.num_nodes:
            raise ValueError("edge_index references a node that does not exist")
        if self.batch is None:
            self.batch = np.zeros(self.num_nodes, dtype=np.int64)
        else:
            self.batch = np.asarray(self.batch, dtype=np.int64).reshape(-1)
            if self.batch.shape[0] != self.num_nodes:
                raise ValueError("batch vector length must equal the number of nodes")

    # ------------------------------------------------------------------ shape

    @property
    def num_nodes(self) -> int:
        return int(self.node_features.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.edge_index.shape[1])

    @property
    def node_feature_dim(self) -> int:
        return int(self.node_features.shape[1]) if self.node_features.ndim == 2 else 0

    @property
    def edge_feature_dim(self) -> int:
        return int(self.edge_features.shape[1]) if self.edge_features.ndim == 2 else 0

    @property
    def metadata_dim(self) -> int:
        if self.metadata.ndim == 1:
            return int(self.metadata.shape[0])
        return int(self.metadata.shape[1])

    # --------------------------------------------------------------- variants

    def undirected(self) -> "HeteroGraph":
        """Symmetrised copy (each edge duplicated in the reverse direction).

        Used by the ``w/o dir.`` ablation and by the node-centric baselines
        (GCN) that assume symmetric neighbourhoods.
        """
        src, dst = self.edge_index
        edge_index = np.concatenate(
            [self.edge_index, np.stack([dst, src])], axis=1
        )
        edge_features = np.concatenate([self.edge_features, self.edge_features], axis=0)
        reverse_types = np.array(
            [
                relation_type_index(
                    bool(self.node_is_arithmetic[d]), bool(self.node_is_arithmetic[s])
                )
                for s, d in zip(src, dst)
            ],
            dtype=np.int64,
        )
        edge_types = np.concatenate([self.edge_types, reverse_types])
        return HeteroGraph(
            node_features=self.node_features,
            edge_index=edge_index,
            edge_features=edge_features,
            edge_types=edge_types,
            metadata=self.metadata,
            node_is_arithmetic=self.node_is_arithmetic,
            node_names=list(self.node_names),
            batch=self.batch.copy(),
            num_graphs=self.num_graphs,
        )

    def without_edge_features(self) -> "HeteroGraph":
        """Copy with edge features zeroed (the ``w/o e.f.`` ablation)."""
        return HeteroGraph(
            node_features=self.node_features,
            edge_index=self.edge_index,
            edge_features=np.zeros_like(self.edge_features),
            edge_types=self.edge_types,
            metadata=self.metadata,
            node_is_arithmetic=self.node_is_arithmetic,
            node_names=list(self.node_names),
            batch=self.batch.copy(),
            num_graphs=self.num_graphs,
        )

    def homogeneous(self) -> "HeteroGraph":
        """Copy with a single relation type (the ``w/o hetr.`` ablation)."""
        return HeteroGraph(
            node_features=self.node_features,
            edge_index=self.edge_index,
            edge_features=self.edge_features,
            edge_types=np.zeros_like(self.edge_types),
            metadata=self.metadata,
            node_is_arithmetic=self.node_is_arithmetic,
            node_names=list(self.node_names),
            batch=self.batch.copy(),
            num_graphs=self.num_graphs,
        )

    # --------------------------------------------------------------- batching

    @staticmethod
    def pack(graphs: list["HeteroGraph"]) -> "HeteroGraph":
        """Disjoint union, skipping the copy for a single-graph list.

        The inference paths pack request chunks through this helper: for one
        graph the original object is returned unchanged (its ``batch`` vector
        already describes a one-graph batch).
        """
        if len(graphs) == 1:
            return graphs[0]
        return HeteroGraph.batch_graphs(graphs)

    @staticmethod
    def batch_graphs(graphs: list["HeteroGraph"]) -> "HeteroGraph":
        """Disjoint union of several graphs into one batched graph."""
        if not graphs:
            raise ValueError("cannot batch an empty list of graphs")
        node_dim = graphs[0].node_feature_dim
        edge_dim = graphs[0].edge_feature_dim
        meta_dim = graphs[0].metadata_dim
        node_features, edge_features, edge_types, metadata = [], [], [], []
        edge_index_parts, arith, batch, names = [], [], [], []
        offset = 0
        for graph_id, graph in enumerate(graphs):
            if graph.node_feature_dim != node_dim:
                raise ValueError("all graphs in a batch must share the node feature dim")
            if graph.edge_feature_dim != edge_dim and graph.num_edges:
                raise ValueError("all graphs in a batch must share the edge feature dim")
            node_features.append(graph.node_features)
            edge_features.append(
                graph.edge_features
                if graph.num_edges
                else np.zeros((0, edge_dim), dtype=np.float64)
            )
            edge_types.append(graph.edge_types)
            edge_index_parts.append(graph.edge_index + offset)
            arith.append(graph.node_is_arithmetic)
            batch.append(np.full(graph.num_nodes, graph_id, dtype=np.int64))
            names.extend(graph.node_names)
            metadata.append(graph.metadata.reshape(1, meta_dim))
            offset += graph.num_nodes
        return HeteroGraph(
            node_features=np.concatenate(node_features, axis=0),
            edge_index=np.concatenate(edge_index_parts, axis=1),
            edge_features=np.concatenate(edge_features, axis=0),
            edge_types=np.concatenate(edge_types),
            metadata=np.concatenate(metadata, axis=0),
            node_is_arithmetic=np.concatenate(arith),
            node_names=names,
            batch=np.concatenate(batch),
            num_graphs=len(graphs),
        )

    def node_counts(self) -> np.ndarray:
        """Number of nodes of each member graph of a batch."""
        counts = np.zeros(self.num_graphs, dtype=np.int64)
        np.add.at(counts, self.batch, 1)
        return counts

    def edge_graph_ids(self) -> np.ndarray:
        """Graph id of every edge (edges never cross member graphs)."""
        if self.num_edges == 0:
            return np.zeros(0, dtype=np.int64)
        return self.batch[self.edge_index[0]]

    def unbatch(self) -> list["HeteroGraph"]:
        """Inverse of :meth:`batch_graphs`: split a batch into member graphs.

        Nodes of a member graph are contiguous in the batch (that is how
        :meth:`batch_graphs` lays them out), so splitting is pure slicing.
        """
        if self.num_graphs == 1:
            return [self]
        node_offsets = np.concatenate([[0], np.cumsum(self.node_counts())])
        edge_ids = self.edge_graph_ids()
        metadata = self.metadata.reshape(self.num_graphs, -1)
        graphs: list[HeteroGraph] = []
        for graph_id in range(self.num_graphs):
            lo, hi = int(node_offsets[graph_id]), int(node_offsets[graph_id + 1])
            mask = edge_ids == graph_id
            names = self.node_names[lo:hi] if len(self.node_names) == self.num_nodes else []
            graphs.append(
                HeteroGraph(
                    node_features=self.node_features[lo:hi],
                    edge_index=self.edge_index[:, mask] - lo,
                    edge_features=self.edge_features[mask]
                    if self.edge_features.size
                    else self.edge_features[:0],
                    edge_types=self.edge_types[mask],
                    metadata=metadata[graph_id],
                    node_is_arithmetic=self.node_is_arithmetic[lo:hi],
                    node_names=list(names),
                )
            )
        return graphs

    def edges_of_type(self, relation: int) -> np.ndarray:
        """Boolean mask of edges with the given relation index."""
        return self.edge_types == relation

    def in_degrees(self) -> np.ndarray:
        degrees = np.zeros(self.num_nodes, dtype=np.int64)
        if self.num_edges:
            np.add.at(degrees, self.edge_index[1], 1)
        return degrees

    def out_degrees(self) -> np.ndarray:
        degrees = np.zeros(self.num_nodes, dtype=np.int64)
        if self.num_edges:
            np.add.at(degrees, self.edge_index[0], 1)
        return degrees
