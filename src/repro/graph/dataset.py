"""Graph dataset containers, feature scaling, splits and serialisation.

A :class:`GraphSample` couples one heterogeneous graph with its power labels
(ground-truth total / dynamic / static power from the "on-board" measurement
substrate), the Vivado-like baseline estimates, and the runtime bookkeeping
used for the Table I speedup column.  :class:`GraphDataset` holds a list of
samples and provides the leave-one-application-out split of the paper, k-fold
cross-validation indices for the ensemble, feature normalisation and ``.npz``
serialisation so generated datasets can be cached between benchmark runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.graph.hetero_graph import HeteroGraph
from repro.utils.rng import new_rng


@dataclass
class GraphSample:
    """One design point: graph features plus labels and bookkeeping."""

    graph: HeteroGraph
    kernel: str
    directives: str
    total_power: float
    dynamic_power: float
    static_power: float
    latency_cycles: int
    vivado_total_power: float = 0.0
    vivado_dynamic_power: float = 0.0
    vivado_flow_seconds: float = 0.0
    powergear_flow_seconds: float = 0.0
    is_baseline: bool = False
    extras: dict = field(default_factory=dict)

    def target(self, kind: str) -> float:
        """Return the regression target: ``"total"`` or ``"dynamic"`` power."""
        if kind == "total":
            return self.total_power
        if kind == "dynamic":
            return self.dynamic_power
        if kind == "static":
            return self.static_power
        raise ValueError(f"unknown target kind {kind!r}")


class FeatureScaler:
    """Standardises node / edge / metadata features based on training samples.

    Means and standard deviations are fitted on the training split only and
    applied to every split, which preserves the leave-one-application-out
    protocol (no information from the held-out kernel leaks into the scaler).
    """

    def __init__(self) -> None:
        self.node_mean: np.ndarray | None = None
        self.node_std: np.ndarray | None = None
        self.edge_mean: np.ndarray | None = None
        self.edge_std: np.ndarray | None = None
        self.meta_mean: np.ndarray | None = None
        self.meta_std: np.ndarray | None = None

    @staticmethod
    def _fit_block(rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        mean = rows.mean(axis=0)
        std = rows.std(axis=0)
        std[std < 1e-9] = 1.0
        return mean, std

    def fit(self, samples: list[GraphSample]) -> "FeatureScaler":
        if not samples:
            raise ValueError("cannot fit a scaler on an empty sample list")
        node_rows = np.concatenate([s.graph.node_features for s in samples], axis=0)
        self.node_mean, self.node_std = self._fit_block(node_rows)
        edge_rows = [s.graph.edge_features for s in samples if s.graph.num_edges]
        if edge_rows:
            edges = np.concatenate(edge_rows, axis=0)
            self.edge_mean, self.edge_std = self._fit_block(edges)
        meta_rows = np.stack([s.graph.metadata for s in samples], axis=0)
        self.meta_mean, self.meta_std = self._fit_block(meta_rows)
        return self

    def transform_graph(self, graph: HeteroGraph) -> HeteroGraph:
        if self.node_mean is None:
            raise RuntimeError("scaler must be fitted before transforming")
        node_features = (graph.node_features - self.node_mean) / self.node_std
        if graph.num_edges and self.edge_mean is not None:
            edge_features = (graph.edge_features - self.edge_mean) / self.edge_std
        else:
            edge_features = graph.edge_features
        metadata = (graph.metadata - self.meta_mean) / self.meta_std
        return HeteroGraph(
            node_features=node_features,
            edge_index=graph.edge_index,
            edge_features=edge_features,
            edge_types=graph.edge_types,
            metadata=metadata,
            node_is_arithmetic=graph.node_is_arithmetic,
            node_names=list(graph.node_names),
            batch=graph.batch.copy(),
            num_graphs=graph.num_graphs,
        )

    def transform(self, samples: list[GraphSample]) -> list[GraphSample]:
        transformed = []
        for sample in samples:
            transformed.append(
                GraphSample(
                    graph=self.transform_graph(sample.graph),
                    kernel=sample.kernel,
                    directives=sample.directives,
                    total_power=sample.total_power,
                    dynamic_power=sample.dynamic_power,
                    static_power=sample.static_power,
                    latency_cycles=sample.latency_cycles,
                    vivado_total_power=sample.vivado_total_power,
                    vivado_dynamic_power=sample.vivado_dynamic_power,
                    vivado_flow_seconds=sample.vivado_flow_seconds,
                    powergear_flow_seconds=sample.powergear_flow_seconds,
                    is_baseline=sample.is_baseline,
                    extras=dict(sample.extras),
                )
            )
        return transformed


class GraphDataset:
    """A collection of :class:`GraphSample` with split and persistence helpers."""

    def __init__(self, samples: list[GraphSample] | None = None) -> None:
        self.samples: list[GraphSample] = list(samples or [])

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    def __getitem__(self, index: int) -> GraphSample:
        return self.samples[index]

    def add(self, sample: GraphSample) -> None:
        self.samples.append(sample)

    def extend(self, samples: list[GraphSample]) -> None:
        self.samples.extend(samples)

    # ------------------------------------------------------------------ splits

    def kernels(self) -> list[str]:
        seen: list[str] = []
        for sample in self.samples:
            if sample.kernel not in seen:
                seen.append(sample.kernel)
        return seen

    def by_kernel(self, kernel: str) -> "GraphDataset":
        return GraphDataset([s for s in self.samples if s.kernel == kernel])

    def leave_one_out(self, test_kernel: str) -> tuple["GraphDataset", "GraphDataset"]:
        """The paper's transferability protocol: hold one application out."""
        if test_kernel not in self.kernels():
            raise KeyError(f"dataset has no kernel {test_kernel!r}")
        train = [s for s in self.samples if s.kernel != test_kernel]
        test = [s for s in self.samples if s.kernel == test_kernel]
        return GraphDataset(train), GraphDataset(test)

    def kfold_indices(self, folds: int, seed: int = 0) -> list[tuple[np.ndarray, np.ndarray]]:
        """Shuffled k-fold (train, validation) index pairs for the ensemble."""
        if folds < 2:
            raise ValueError("k-fold cross validation requires at least 2 folds")
        if folds > len(self.samples):
            raise ValueError("more folds than samples")
        rng = new_rng(seed)
        order = rng.permutation(len(self.samples))
        chunks = np.array_split(order, folds)
        pairs = []
        for fold in range(folds):
            valid = chunks[fold]
            train = np.concatenate([chunks[i] for i in range(folds) if i != fold])
            pairs.append((train, valid))
        return pairs

    def random_split(
        self, fraction: float, seed: int = 0
    ) -> tuple["GraphDataset", "GraphDataset"]:
        """Random (1 - fraction, fraction) split, e.g. a 20 % validation set."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        rng = new_rng(seed)
        order = rng.permutation(len(self.samples))
        cut = max(1, int(round(len(self.samples) * fraction)))
        held = set(order[:cut].tolist())
        first = [s for i, s in enumerate(self.samples) if i not in held]
        second = [s for i, s in enumerate(self.samples) if i in held]
        return GraphDataset(first), GraphDataset(second)

    # ----------------------------------------------------------------- arrays

    def targets(self, kind: str) -> np.ndarray:
        return np.array([s.target(kind) for s in self.samples], dtype=float)

    def graphs(self) -> list[HeteroGraph]:
        return [s.graph for s in self.samples]

    def average_num_nodes(self) -> float:
        if not self.samples:
            return 0.0
        return float(np.mean([s.graph.num_nodes for s in self.samples]))

    def summary(self) -> dict:
        """Dataset-properties row of Table I: sample count and average nodes."""
        return {
            "num_samples": len(self.samples),
            "avg_nodes": self.average_num_nodes(),
            "kernels": self.kernels(),
        }

    # ------------------------------------------------------------ persistence

    @staticmethod
    def _json_safe_extras(extras: dict) -> dict:
        """The JSON-serialisable subset of a sample's ``extras``.

        Heavyweight pipeline objects (HLS reports, designs) are dropped;
        bookkeeping values such as ``config_vector`` survive the round trip so
        loaded datasets can still drive the DSE explorer.
        """
        safe: dict = {}
        for key, value in extras.items():
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                continue
            safe[key] = value
        return safe

    def save_npz(self, path: str | Path) -> None:
        """Serialise the dataset (graphs, labels, bookkeeping) into one ``.npz``."""
        path = Path(path)
        payload: dict[str, np.ndarray] = {}
        meta: list[dict] = []
        for index, sample in enumerate(self.samples):
            graph = sample.graph
            payload[f"g{index}_node_features"] = graph.node_features
            payload[f"g{index}_edge_index"] = graph.edge_index
            payload[f"g{index}_edge_features"] = graph.edge_features
            payload[f"g{index}_edge_types"] = graph.edge_types
            payload[f"g{index}_metadata"] = graph.metadata
            payload[f"g{index}_arith"] = graph.node_is_arithmetic
            meta.append(
                {
                    "kernel": sample.kernel,
                    "directives": sample.directives,
                    "total_power": sample.total_power,
                    "dynamic_power": sample.dynamic_power,
                    "static_power": sample.static_power,
                    "latency_cycles": sample.latency_cycles,
                    "vivado_total_power": sample.vivado_total_power,
                    "vivado_dynamic_power": sample.vivado_dynamic_power,
                    "vivado_flow_seconds": sample.vivado_flow_seconds,
                    "powergear_flow_seconds": sample.powergear_flow_seconds,
                    "is_baseline": sample.is_baseline,
                    "node_names": sample.graph.node_names,
                    "extras": self._json_safe_extras(sample.extras),
                }
            )
        payload["sample_meta"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        np.savez_compressed(path, **payload)

    @staticmethod
    def load_npz(path: str | Path) -> "GraphDataset":
        path = Path(path)
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(bytes(data["sample_meta"].tolist()).decode("utf-8"))
            samples: list[GraphSample] = []
            for index, record in enumerate(meta):
                graph = HeteroGraph(
                    node_features=data[f"g{index}_node_features"],
                    edge_index=data[f"g{index}_edge_index"],
                    edge_features=data[f"g{index}_edge_features"],
                    edge_types=data[f"g{index}_edge_types"],
                    metadata=data[f"g{index}_metadata"],
                    node_is_arithmetic=data[f"g{index}_arith"],
                    node_names=list(record.get("node_names", [])),
                )
                samples.append(
                    GraphSample(
                        graph=graph,
                        kernel=record["kernel"],
                        directives=record["directives"],
                        total_power=record["total_power"],
                        dynamic_power=record["dynamic_power"],
                        static_power=record["static_power"],
                        latency_cycles=record["latency_cycles"],
                        vivado_total_power=record["vivado_total_power"],
                        vivado_dynamic_power=record["vivado_dynamic_power"],
                        vivado_flow_seconds=record["vivado_flow_seconds"],
                        powergear_flow_seconds=record["powergear_flow_seconds"],
                        is_baseline=record["is_baseline"],
                        extras=dict(record.get("extras", {})),
                    )
                )
        return GraphDataset(samples)
