"""Graph construction flow: HLS design -> heterogeneous power graph.

Implements the four optimisation strategies of Section III-A — buffer
insertion, datapath merging, graph trimming and feature annotation — on top of
the raw DFG extracted by :mod:`repro.hls.dfg`, producing the
:class:`~repro.graph.hetero_graph.HeteroGraph` samples consumed by HEC-GNN and
the baseline models.
"""

from repro.graph.hetero_graph import HeteroGraph, RELATION_TYPES, relation_type_index
from repro.graph.power_graph import PowerGraph, PowerGraphNode, PowerGraphEdge
from repro.graph.construction import GraphConstructionConfig, GraphConstructor, build_power_graph
from repro.graph.features import FeatureEncoder, NODE_NUMERIC_FEATURES, EDGE_FEATURE_NAMES
from repro.graph.dataset import GraphSample, GraphDataset, FeatureScaler

__all__ = [
    "HeteroGraph",
    "RELATION_TYPES",
    "relation_type_index",
    "PowerGraph",
    "PowerGraphNode",
    "PowerGraphEdge",
    "GraphConstructionConfig",
    "GraphConstructor",
    "build_power_graph",
    "FeatureEncoder",
    "NODE_NUMERIC_FEATURES",
    "EDGE_FEATURE_NAMES",
    "GraphSample",
    "GraphDataset",
    "FeatureScaler",
]
