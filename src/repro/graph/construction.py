"""Graph construction flow (Section III-A of the paper).

``GraphConstructor`` turns one HLS result plus its activity profile into a
heterogeneous power graph in four steps:

1. **Initial DFG** — one node per IR instruction (except ``ret``), one edge per
   def-use relation, annotated with the value-stream statistics gathered by the
   activity simulator.
2. **Buffer insertion** — memory buffers (array arguments and ``alloca`` s) are
   materialised as buffer nodes; loads are fed from their buffer, stores feed
   into it, address-generation nodes (``getelementptr`` / ``alloca``) are
   removed and their index-producing operands are reconnected to the buffer
   (the address bus).  Buffer nodes carry memory resource utilisation.
3. **Datapath merging** — nodes bound to the same functional unit by the HLS
   binder are fused (resource sharing across FSM states), and identical
   load/store chains between the same endpoints are fused, with activity
   statistics accumulated.
4. **Graph trimming** — trivial cast nodes (``sext`` / ``zext`` / ``trunc`` /
   ``bitcast``) are bypassed so the model focuses on arithmetic-intensive
   datapaths.

Feature annotation is delegated to :class:`~repro.graph.features.FeatureEncoder`.
Every pass can be disabled through :class:`GraphConstructionConfig`, which the
ablation benchmarks use to quantify the contribution of the construction flow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.activity.simulator import ActivityProfile
from repro.activity.tracer import ValueStreamStats
from repro.graph.features import FeatureEncoder
from repro.graph.hetero_graph import HeteroGraph
from repro.graph.power_graph import PowerGraph, PowerGraphEdge, PowerGraphNode
from repro.hls.report import HLSReport, HLSResult
from repro.ir.instructions import Instruction, Opcode, TRIVIAL_OPCODES
from repro.ir.types import ArrayType, PointerType
from repro.ir.validation import pointer_roots


@dataclass(frozen=True)
class GraphConstructionConfig:
    """Switches for the four optimisation strategies."""

    buffer_insertion: bool = True
    datapath_merging: bool = True
    trimming: bool = True
    edge_features: bool = True

    @staticmethod
    def raw() -> "GraphConstructionConfig":
        """The unoptimised configuration (raw DFG, no edge activity features)."""
        return GraphConstructionConfig(
            buffer_insertion=False,
            datapath_merging=False,
            trimming=False,
            edge_features=False,
        )


class GraphConstructor:
    """Builds heterogeneous power graphs from HLS results."""

    def __init__(
        self,
        config: GraphConstructionConfig | None = None,
        encoder: FeatureEncoder | None = None,
    ) -> None:
        self.config = config or GraphConstructionConfig()
        self.encoder = encoder or FeatureEncoder()

    # ------------------------------------------------------------------ public

    def build_power_graph(
        self, hls_result: HLSResult, profile: ActivityProfile
    ) -> PowerGraph:
        """Run the construction passes and return the mutable power graph."""
        graph, load_store_buffers, uid_to_node = self._initial_graph(hls_result, profile)
        if self.config.buffer_insertion:
            self._insert_buffers(graph, hls_result, load_store_buffers, uid_to_node)
        if self.config.datapath_merging:
            self._merge_datapaths(graph, hls_result, uid_to_node)
        if self.config.trimming:
            self._trim(graph)
        return graph

    def build(
        self,
        hls_result: HLSResult,
        profile: ActivityProfile,
        baseline_report: HLSReport | None = None,
    ) -> HeteroGraph:
        """Full flow: construction passes plus feature annotation."""
        graph = self.build_power_graph(hls_result, profile)
        return self.encoder.encode(
            graph,
            hls_result.report,
            baseline_report=baseline_report,
            use_edge_features=self.config.edge_features,
        )

    # -------------------------------------------------------------- pass 1: DFG

    def _initial_graph(
        self, hls_result: HLSResult, profile: ActivityProfile
    ) -> tuple[PowerGraph, dict[int, str], dict[int, int]]:
        function = hls_result.design.function
        roots = pointer_roots(function)
        graph = PowerGraph()
        instruction_nodes: dict[int, int] = {}
        load_store_buffers: dict[int, str] = {}

        for instr in function.instructions:
            if instr.opcode == Opcode.RET:
                continue
            node_id = graph.new_node_id()
            instruction_nodes[instr.uid] = node_id
            input_stats = ValueStreamStats(bit_width=0)
            for slot in range(len(instr.operands)):
                input_stats = input_stats.merged_with(profile.operand_stats(instr.uid, slot))
            graph.add_node(
                PowerGraphNode(
                    node_id=node_id,
                    kind="op",
                    opcode=instr.opcode.value,
                    category=instr.category.value,
                    is_arithmetic=instr.is_arithmetic,
                    bitwidth=instr.type.bit_width if instr.has_result else 32,
                    result_stats=profile.result_stats(instr.uid),
                    input_stats=input_stats,
                    name=instr.name,
                )
            )
            if instr.opcode in (Opcode.LOAD, Opcode.STORE):
                pointer = (
                    instr.operands[0] if instr.opcode == Opcode.LOAD else instr.operands[1]
                )
                root = roots.get(pointer.uid)
                if root is not None:
                    load_store_buffers[node_id] = root.name

        for instr in function.instructions:
            if instr.opcode == Opcode.RET:
                continue
            dst_id = instruction_nodes[instr.uid]
            for slot, operand in enumerate(instr.operands):
                if isinstance(operand, Instruction) and operand.uid in instruction_nodes:
                    src_id = instruction_nodes[operand.uid]
                    graph.add_edge(
                        PowerGraphEdge(
                            src=src_id,
                            dst=dst_id,
                            src_stats=profile.result_stats(operand.uid),
                            snk_stats=profile.operand_stats(instr.uid, slot),
                            bitwidth=operand.type.bit_width,
                        )
                    )

        return graph, load_store_buffers, instruction_nodes

    # ------------------------------------------------------- pass 2: buffers

    def _insert_buffers(
        self,
        graph: PowerGraph,
        hls_result: HLSResult,
        load_store_buffers: dict[int, str],
        uid_to_node: dict[int, int],
    ) -> None:
        design = hls_result.design
        function = design.function

        buffer_nodes: dict[str, int] = {}

        def buffer_node_for(name: str, kind: str, bits: int) -> int:
            if name in buffer_nodes:
                return buffer_nodes[name]
            partition = design.array_partitions.get(name)
            node_id = graph.new_node_id()
            graph.add_node(
                PowerGraphNode(
                    node_id=node_id,
                    kind="buffer",
                    opcode="buffer",
                    category="buffer",
                    is_arithmetic=False,
                    bitwidth=32,
                    buffer_name=name,
                    buffer_kind=kind,
                    buffer_bits=bits,
                    partition_factor=partition.factor if partition else 1,
                    name=f"buf_{name}",
                )
            )
            buffer_nodes[name] = node_id
            return node_id

        # I/O buffers from array arguments.
        for arg in function.args:
            ty = arg.type
            if isinstance(ty, PointerType) and isinstance(ty.pointee, ArrayType):
                array_ty = ty.pointee
                buffer_node_for(
                    arg.name, "io", array_ty.num_elements * array_ty.element.bit_width
                )

        # Internal buffers from allocas.
        for instr in function.instructions:
            if instr.opcode == Opcode.ALLOCA:
                allocated = instr.attrs["allocated_type"]
                if isinstance(allocated, ArrayType):
                    bits = allocated.num_elements * allocated.element.bit_width
                else:
                    bits = allocated.bit_width
                buffer_node_for(instr.name, "internal", bits)

        # Connect loads and stores to their buffers.
        for node_id, buffer_name in load_store_buffers.items():
            if node_id not in graph.nodes:
                continue
            node = graph.nodes[node_id]
            kind = "io"
            buffer_id = buffer_nodes.get(buffer_name)
            if buffer_id is None:
                buffer_id = buffer_node_for(buffer_name, kind, 0)
            if node.opcode == Opcode.LOAD.value:
                graph.add_edge(
                    PowerGraphEdge(
                        src=buffer_id,
                        dst=node_id,
                        src_stats=node.result_stats,
                        snk_stats=node.result_stats,
                        bitwidth=node.bitwidth,
                    )
                )
            else:  # store
                graph.add_edge(
                    PowerGraphEdge(
                        src=node_id,
                        dst=buffer_id,
                        src_stats=node.input_stats,
                        snk_stats=node.input_stats,
                        bitwidth=node.bitwidth,
                    )
                )

        # Remove address-generation nodes, reconnecting index producers to the
        # buffer they address (the address bus toggling still matters).
        roots = pointer_roots(function)
        for instr in function.instructions:
            if instr.opcode not in (Opcode.GETELEMENTPTR, Opcode.ALLOCA):
                continue
            node_id = uid_to_node.get(instr.uid)
            if node_id is None or node_id not in graph.nodes:
                continue
            if instr.opcode == Opcode.GETELEMENTPTR:
                root = roots.get(instr.uid)
                buffer_id = buffer_nodes.get(root.name) if root is not None else None
                if buffer_id is not None:
                    for edge in graph.in_edges(node_id):
                        graph.add_edge(
                            PowerGraphEdge(
                                src=edge.src,
                                dst=buffer_id,
                                src_stats=edge.src_stats,
                                snk_stats=edge.snk_stats,
                                bitwidth=edge.bitwidth,
                            )
                        )
            graph.remove_node(node_id)

    # ------------------------------------------------------ pass 3: merging

    def _merge_datapaths(
        self, graph: PowerGraph, hls_result: HLSResult, uid_to_node: dict[int, int]
    ) -> None:
        # (a) Merge operations bound to the same functional unit.
        for unit in hls_result.binding.units:
            member_nodes = [
                uid_to_node[uid]
                for uid in unit.instruction_uids
                if uid in uid_to_node and uid_to_node[uid] in graph.nodes
            ]
            if len(member_nodes) < 2:
                continue
            keep = member_nodes[0]
            for other in member_nodes[1:]:
                graph.merge_nodes(keep, other)

        # (b) Merge identical chains: same opcode, same buffer, same neighbours.
        signature_groups: dict[tuple, list[int]] = {}
        for node_id, node in list(graph.nodes.items()):
            if node.kind != "op":
                continue
            signature = (
                node.opcode,
                node.buffer_name,
                frozenset(graph.predecessors(node_id)),
                frozenset(graph.successors(node_id)),
            )
            signature_groups.setdefault(signature, []).append(node_id)
        for members in signature_groups.values():
            if len(members) < 2:
                continue
            keep = members[0]
            for other in members[1:]:
                if other in graph.nodes and keep in graph.nodes:
                    graph.merge_nodes(keep, other)

    # ----------------------------------------------------- pass 4: trimming

    @staticmethod
    def _trim(graph: PowerGraph) -> None:
        trivial_names = {opcode.value for opcode in TRIVIAL_OPCODES}
        for node_id, node in list(graph.nodes.items()):
            if node.kind != "op" or node.opcode not in trivial_names:
                continue
            in_edges = graph.in_edges(node_id)
            out_edges = graph.out_edges(node_id)
            for incoming in in_edges:
                for outgoing in out_edges:
                    if incoming.src == outgoing.dst:
                        continue
                    graph.add_edge(
                        PowerGraphEdge(
                            src=incoming.src,
                            dst=outgoing.dst,
                            src_stats=incoming.src_stats,
                            snk_stats=outgoing.snk_stats,
                            bitwidth=max(incoming.bitwidth, outgoing.bitwidth),
                        )
                    )
            graph.remove_node(node_id)


def build_power_graph(
    hls_result: HLSResult,
    profile: ActivityProfile,
    config: GraphConstructionConfig | None = None,
) -> PowerGraph:
    """Convenience wrapper: run the construction passes only."""
    return GraphConstructor(config).build_power_graph(hls_result, profile)
