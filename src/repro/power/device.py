"""Device model: electrical constants of the target FPGA.

The constants are tuned so that the PolyBench design points land in the power
range reported by the paper for the ZCU102 board at 100 MHz: total power of
roughly 0.4–1.2 W with a dynamic component of 0.02–0.3 W (compare the axes of
Fig. 4).  Only the *relative* behaviour matters for the reproduction — the
models never see these constants, they only see graphs and measured labels.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceModel:
    """Electrical and technology constants of one FPGA device."""

    name: str
    #: Core supply voltage in volts.
    voltage: float
    #: Operating frequency in hertz.
    frequency: float
    #: Capacitance per toggled bit of a short local net, in farads.
    net_capacitance_per_bit: float
    #: Additional capacitance per unit of estimated wirelength, in farads.
    wire_capacitance_per_unit: float
    #: Clock-tree + register capacitance per flip-flop, in farads.
    clock_capacitance_per_ff: float
    #: Dynamic energy per BRAM access, in joules.
    bram_access_energy: float
    #: Dynamic energy per DSP operation, in joules.
    dsp_op_energy: float
    #: Leakage power of the always-on fabric (PS + static infrastructure), in watts.
    base_static_power: float
    #: Leakage per occupied LUT / FF / DSP / BRAM, in watts.
    lut_leakage: float
    ff_leakage: float
    dsp_leakage: float
    bram_leakage: float
    #: Fraction of leakage that power gating removes from *unused* hard blocks.
    power_gating_efficiency: float
    #: Total hard-block counts of the device (used to compute unused leakage).
    total_dsp: int
    total_bram: int
    #: Relative standard deviation of the measurement noise.
    measurement_noise: float

    @property
    def vdd_squared_f(self) -> float:
        """The ``V² · f`` factor of Eq. (1)."""
        return self.voltage**2 * self.frequency


#: Xilinx Zynq UltraScale+ ZCU102-like device at 100 MHz.
ZCU102 = DeviceModel(
    name="zcu102",
    voltage=0.85,
    frequency=100e6,
    net_capacitance_per_bit=4.0e-12,
    wire_capacitance_per_unit=1.5e-13,
    clock_capacitance_per_ff=2.0e-14,
    bram_access_energy=1.1e-11,
    dsp_op_energy=6.0e-12,
    base_static_power=0.355,
    lut_leakage=1.6e-6,
    ff_leakage=0.8e-6,
    dsp_leakage=3.5e-4,
    bram_leakage=5.5e-4,
    power_gating_efficiency=0.8,
    total_dsp=2520,
    total_bram=912,
    measurement_noise=0.01,
)
