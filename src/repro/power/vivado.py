"""Vivado-like power estimator baseline.

The paper compares against the Vivado power estimator fed with post-
implementation netlists and ``.saif`` activity files, and observes that it
still deviates substantially from board measurements, mainly because it does
not model the UltraScale power gating of unused hard blocks; the authors
therefore calibrate it with a linear regression model and still measure an
average total-power error of ~22 %.

This estimator reproduces those characteristics:

* static power assumes *no* power gating (every hard block leaks), a large
  systematic overestimate,
* dynamic power is report-based: per-resource unit powers multiplied by the
  design's average toggle rate — it has access to the simulated activity (like
  the ``.saif``-driven Vivado flow) but not to the per-net capacitances, so a
  design-dependent error remains,
* :class:`VivadoCalibration` implements the paper's linear-regression
  calibration, fitted on training kernels and applied to the held-out kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.activity.simulator import ActivityProfile
from repro.hls.report import HLSResult
from repro.power.device import DeviceModel, ZCU102


@dataclass(frozen=True)
class VivadoEstimate:
    """Raw (uncalibrated) Vivado-like estimate in watts."""

    total: float
    dynamic: float
    static: float


class VivadoPowerEstimator:
    """Report-driven estimator with Vivado-like systematic biases."""

    #: Dynamic unit powers in watts per resource at the reference toggle rate.
    LUT_UNIT_POWER = 2.4e-5
    FF_UNIT_POWER = 6.0e-6
    DSP_UNIT_POWER = 1.9e-3
    BRAM_UNIT_POWER = 2.6e-3
    #: Fixed dynamic overhead (clock network) in watts.
    CLOCK_OVERHEAD = 0.012
    #: Report-based estimation blends the simulated average toggle rate with the
    #: tool's default assumption; per-net activity (which dominates the real
    #: dynamic power) is never used, which is the structural error the paper
    #: observes surviving calibration.
    DEFAULT_TOGGLE_RATE = 0.125
    SIMULATED_TOGGLE_WEIGHT = 0.3

    def __init__(self, device: DeviceModel = ZCU102) -> None:
        self.device = device

    def estimate(self, hls_result: HLSResult, profile: ActivityProfile) -> VivadoEstimate:
        report = hls_result.report
        resources = report.resources
        latency = max(1, report.latency_cycles)
        simulated_toggle = profile.average_toggle_rate(latency)
        toggle = (
            self.SIMULATED_TOGGLE_WEIGHT * simulated_toggle
            + (1.0 - self.SIMULATED_TOGGLE_WEIGHT) * self.DEFAULT_TOGGLE_RATE
        )

        dynamic = self.CLOCK_OVERHEAD + toggle * (
            self.LUT_UNIT_POWER * resources.lut
            + self.FF_UNIT_POWER * resources.ff
            + self.DSP_UNIT_POWER * resources.dsp
            + self.BRAM_UNIT_POWER * resources.bram
        )

        # No power gating: every hard block on the device leaks.
        static = (
            self.device.base_static_power
            + self.device.lut_leakage * resources.lut
            + self.device.ff_leakage * resources.ff
            + self.device.dsp_leakage * self.device.total_dsp
            + self.device.bram_leakage * self.device.total_bram
        )
        return VivadoEstimate(total=dynamic + static, dynamic=dynamic, static=static)


class VivadoCalibration:
    """Linear calibration of the raw Vivado estimates against measurements.

    Mirrors the paper: "we further calibrate the results with a linear
    regression model".  A separate line is fitted for total and dynamic power
    on the training kernels, then applied to the held-out kernel.
    """

    def __init__(self) -> None:
        self.total_coefficients: tuple[float, float] | None = None
        self.dynamic_coefficients: tuple[float, float] | None = None

    @staticmethod
    def _fit_line(estimates: np.ndarray, targets: np.ndarray) -> tuple[float, float]:
        estimates = np.asarray(estimates, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if estimates.size < 2:
            raise ValueError("calibration requires at least two samples")
        design = np.stack([estimates, np.ones_like(estimates)], axis=1)
        solution, *_ = np.linalg.lstsq(design, targets, rcond=None)
        return float(solution[0]), float(solution[1])

    def fit(
        self,
        raw_total: np.ndarray,
        measured_total: np.ndarray,
        raw_dynamic: np.ndarray,
        measured_dynamic: np.ndarray,
    ) -> "VivadoCalibration":
        self.total_coefficients = self._fit_line(raw_total, measured_total)
        self.dynamic_coefficients = self._fit_line(raw_dynamic, measured_dynamic)
        return self

    def calibrate_total(self, raw_total: np.ndarray) -> np.ndarray:
        if self.total_coefficients is None:
            raise RuntimeError("calibration has not been fitted")
        slope, intercept = self.total_coefficients
        return slope * np.asarray(raw_total, dtype=float) + intercept

    def calibrate_dynamic(self, raw_dynamic: np.ndarray) -> np.ndarray:
        if self.dynamic_coefficients is None:
            raise RuntimeError("calibration has not been fitted")
        slope, intercept = self.dynamic_coefficients
        return slope * np.asarray(raw_dynamic, dtype=float) + intercept
