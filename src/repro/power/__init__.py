"""FPGA power substrate.

This package replaces the physical part of the paper's flow — the Vivado RTL
implementation, the ZCU102 board and the Power Advantage Tool measurements —
with a consistent analytical model:

* :mod:`repro.power.device` — ZCU102-like device constants (voltage, clock,
  leakage, capacitance units, power gating efficiency),
* :mod:`repro.power.placement` — a placement / wirelength surrogate that
  assigns each DFG net a capacitance,
* :mod:`repro.power.ground_truth` — the "on-board measurement": per-net
  ``α·C·V²·f`` dynamic power plus gated leakage plus measurement noise,
* :mod:`repro.power.vivado` — a report-based estimator with the systematic
  biases the paper observes in the Vivado power estimator (no power gating,
  coarse average toggle rates), plus the linear calibration the paper applies,
* :mod:`repro.power.runtime` — runtime cost models of the competing flows
  (used for the Table I speedup column).
"""

from repro.power.device import DeviceModel, ZCU102
from repro.power.placement import PlacementSurrogate, NetCapacitance
from repro.power.ground_truth import GroundTruthPowerModel, PowerMeasurement
from repro.power.vivado import VivadoPowerEstimator, VivadoCalibration
from repro.power.runtime import RuntimeModel, FlowRuntimes

__all__ = [
    "DeviceModel",
    "ZCU102",
    "PlacementSurrogate",
    "NetCapacitance",
    "GroundTruthPowerModel",
    "PowerMeasurement",
    "VivadoPowerEstimator",
    "VivadoCalibration",
    "RuntimeModel",
    "FlowRuntimes",
]
