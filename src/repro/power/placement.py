"""Placement / routing surrogate: per-net effective capacitance.

In the real flow the interconnect capacitance ``C_i`` of Eq. (1) is fixed by
placement and routing.  The surrogate assigns every dataflow net an effective
capacitance composed of

* a per-bit local-net component,
* a wirelength component that grows with the square root of the occupied area
  (average Manhattan distance on a larger die region) and with routing
  congestion (utilisation of the occupied region), and
* a deterministic per-net jitter derived from a hash of the net's endpoints —
  placement idiosyncrasies that the high-level graph features cannot predict,
  which gives the learning problem the same irreducible-error character as the
  real board data.

Each IR-level dataflow edge stands for the whole bundle of physical nets of
that datapath (fan-out, control enables), so the constants in
:mod:`repro.power.device` are *effective* values tuned to land in the power
range reported by the paper, not per-wire SPICE values.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from repro.hls.resources import ResourceUsage
from repro.power.device import DeviceModel, ZCU102


@dataclass(frozen=True)
class NetCapacitance:
    """Effective capacitance of one net in farads, with its wirelength in units."""

    capacitance: float
    wirelength: float


class PlacementSurrogate:
    """Derives per-net capacitances for an implemented design."""

    def __init__(self, device: DeviceModel = ZCU102, seed: int = 0) -> None:
        self.device = device
        self.seed = seed

    # ------------------------------------------------------------------ sizing

    def region_side(self, resources: ResourceUsage) -> float:
        """Side length (in placement units) of the region occupied by the design."""
        cells = max(resources.total_cells, 1)
        return math.sqrt(float(cells))

    def congestion_factor(self, resources: ResourceUsage) -> float:
        """Routing congestion grows slowly with design size."""
        cells = max(resources.total_cells, 1)
        return 1.0 + 0.15 * math.log1p(cells / 2000.0)

    # ------------------------------------------------------------------- nets

    def _jitter(self, design_key: str, net_key: str) -> float:
        """Deterministic per-net wirelength jitter in [0.6, 1.6)."""
        digest = hashlib.sha256(
            f"{self.seed}/{design_key}/{net_key}".encode("utf-8")
        ).digest()
        fraction = int.from_bytes(digest[:8], "little") / float(2**64)
        return 0.6 + fraction

    def net_capacitance(
        self,
        design_key: str,
        net_key: str,
        bitwidth: int,
        resources: ResourceUsage,
        fanout: int = 1,
    ) -> NetCapacitance:
        """Effective capacitance of the net identified by ``net_key``."""
        side = self.region_side(resources)
        congestion = self.congestion_factor(resources)
        jitter = self._jitter(design_key, net_key)
        # Average net length is roughly half the region side, stretched by
        # congestion and by fan-out (each extra sink adds a branch).
        wirelength = 0.5 * side * congestion * jitter * (1.0 + 0.25 * max(fanout - 1, 0))
        capacitance = (
            self.device.net_capacitance_per_bit * max(bitwidth, 1)
            + self.device.wire_capacitance_per_unit * wirelength * max(bitwidth, 1) / 32.0
        )
        return NetCapacitance(capacitance=capacitance, wirelength=wirelength)
