"""Ground-truth power: the stand-in for on-board measurement.

The paper measures each implemented design on a ZCU102 board with the Power
Advantage Tool.  Here the "measurement" is produced by a lower-level
analytical model than anything the estimators see:

* **net dynamic power** — for every def-use edge of the *full* DFG (before any
  graph-construction optimisation), ``(Hamming toggles per cycle) · C_net ·
  V² · f`` with per-net capacitances from the placement surrogate,
* **clock / register power** — proportional to the flip-flop count,
* **BRAM and DSP dynamic power** — proportional to their per-cycle access /
  operation rates,
* **static power** — base infrastructure leakage plus per-resource leakage of
  the *used* blocks, plus the residual leakage of unused hard blocks after
  UltraScale power gating, and
* **measurement noise** — a small multiplicative Gaussian term, reproducing
  the run-to-run variation of physical measurements.

Because the estimators (PowerGear, HL-Pow, the GNN baselines, the Vivado-like
model) never see the per-net capacitances or the noise, learning to predict
these labels from graphs has the same structure as learning the board data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.activity.simulator import ActivityProfile
from repro.hls.report import HLSResult
from repro.ir.instructions import Instruction, Opcode
from repro.power.device import DeviceModel, ZCU102
from repro.power.placement import PlacementSurrogate
from repro.utils.rng import spawn_rng


#: Relative wiring-capacitance factors by consumer opcode.  Nets that feed
#: memory ports or wide dividers route much further than local arithmetic
#: forwarding paths on a real device; because the nine kernels have different
#: memory-to-compute ratios, a report-level estimator that only sees resource
#: counts carries a kernel-specific bias that a single linear calibration
#: cannot remove (the effect behind Vivado's residual error in Table I),
#: whereas models that see per-operation structure and per-edge activity can
#: absorb it.
_NET_WIRING_FACTORS: dict[Opcode, float] = {
    Opcode.LOAD: 2.4,
    Opcode.STORE: 2.4,
    Opcode.GETELEMENTPTR: 1.6,
    Opcode.FDIV: 1.8,
    Opcode.FADD: 1.25,
    Opcode.FSUB: 1.25,
    Opcode.FMUL: 0.85,
    Opcode.ADD: 0.55,
    Opcode.SUB: 0.55,
    Opcode.MUL: 0.7,
    Opcode.SEXT: 0.5,
    Opcode.TRUNC: 0.5,
}


@dataclass(frozen=True)
class PowerMeasurement:
    """One measured design point, in watts."""

    total: float
    dynamic: float
    static: float

    def __post_init__(self) -> None:
        if self.total <= 0 or self.dynamic < 0 or self.static < 0:
            raise ValueError("power values must be positive")


@dataclass(frozen=True)
class PowerBreakdown:
    """Detailed decomposition (useful for tests and debugging)."""

    net_power: float
    clock_power: float
    bram_power: float
    dsp_power: float
    static_used: float
    static_gated: float
    static_base: float

    @property
    def dynamic(self) -> float:
        return self.net_power + self.clock_power + self.bram_power + self.dsp_power

    @property
    def static(self) -> float:
        return self.static_base + self.static_used + self.static_gated


class GroundTruthPowerModel:
    """Computes the "measured" power of one implemented design."""

    def __init__(
        self,
        device: DeviceModel = ZCU102,
        seed: int = 0,
        noise: bool = True,
    ) -> None:
        self.device = device
        self.seed = seed
        self.noise = noise
        self.placement = PlacementSurrogate(device, seed=seed)

    # ------------------------------------------------------------------ public

    def breakdown(
        self, hls_result: HLSResult, profile: ActivityProfile
    ) -> PowerBreakdown:
        device = self.device
        report = hls_result.report
        resources = report.resources
        latency = max(1, report.latency_cycles)
        design_key = f"{report.kernel_name}/{report.directives.describe()}"

        function = hls_result.design.function
        fanout: dict[int, int] = {}
        for instr in function.instructions:
            for operand in instr.operands:
                if isinstance(operand, Instruction):
                    fanout[operand.uid] = fanout.get(operand.uid, 0) + 1

        net_power = 0.0
        for instr in function.instructions:
            if instr.opcode == Opcode.RET:
                continue
            for slot, operand in enumerate(instr.operands):
                if not isinstance(operand, Instruction):
                    continue
                stats = profile.result_stats(operand.uid)
                toggles_per_cycle = stats.switching_activity(latency)
                if toggles_per_cycle == 0.0:
                    continue
                net = self.placement.net_capacitance(
                    design_key,
                    # Instruction names are unique within a function and stable
                    # across runs (unlike uids, which come from a global counter).
                    f"{operand.name}->{instr.name}:{slot}",
                    bitwidth=max(operand.type.bit_width, 1),
                    resources=resources,
                    fanout=fanout.get(operand.uid, 1),
                )
                wiring = _NET_WIRING_FACTORS.get(instr.opcode, 1.0)
                net_power += (
                    toggles_per_cycle * net.capacitance * wiring * device.vdd_squared_f
                )

        clock_power = (
            device.clock_capacitance_per_ff * resources.ff * device.vdd_squared_f
        )

        memory_accesses_per_cycle = self._memory_accesses_per_cycle(
            hls_result, profile, latency
        )
        bram_power = memory_accesses_per_cycle * device.bram_access_energy * device.frequency

        dsp_ops_per_cycle = self._dsp_ops_per_cycle(hls_result, profile, latency)
        dsp_power = dsp_ops_per_cycle * device.dsp_op_energy * device.frequency

        static_used = (
            device.lut_leakage * resources.lut
            + device.ff_leakage * resources.ff
            + device.dsp_leakage * resources.dsp
            + device.bram_leakage * resources.bram
        )
        unused_dsp = max(device.total_dsp - resources.dsp, 0)
        unused_bram = max(device.total_bram - resources.bram, 0)
        static_gated = (1.0 - device.power_gating_efficiency) * (
            device.dsp_leakage * unused_dsp + device.bram_leakage * unused_bram
        )
        return PowerBreakdown(
            net_power=net_power,
            clock_power=clock_power,
            bram_power=bram_power,
            dsp_power=dsp_power,
            static_used=static_used,
            static_gated=static_gated,
            static_base=device.base_static_power,
        )

    def measure(
        self, hls_result: HLSResult, profile: ActivityProfile
    ) -> PowerMeasurement:
        """Return the noisy "on-board" measurement of one design point."""
        breakdown = self.breakdown(hls_result, profile)
        dynamic = breakdown.dynamic
        static = breakdown.static
        if self.noise:
            rng = spawn_rng(
                self.seed,
                "measurement",
                hls_result.report.kernel_name,
                hls_result.report.directives.describe(),
            )
            dynamic *= float(1.0 + rng.normal(0.0, self.device.measurement_noise))
            static *= float(1.0 + rng.normal(0.0, self.device.measurement_noise / 2))
        dynamic = max(dynamic, 1e-6)
        static = max(static, 1e-6)
        return PowerMeasurement(total=dynamic + static, dynamic=dynamic, static=static)

    # --------------------------------------------------------------- internals

    @staticmethod
    def _memory_accesses_per_cycle(
        hls_result: HLSResult, profile: ActivityProfile, latency: int
    ) -> float:
        accesses = 0
        for instr in hls_result.design.function.instructions:
            if instr.opcode == Opcode.LOAD:
                accesses += profile.result_stats(instr.uid).exec_count
            elif instr.opcode == Opcode.STORE:
                accesses += profile.operand_stats(instr.uid, 0).exec_count
        return accesses / latency

    @staticmethod
    def _dsp_ops_per_cycle(
        hls_result: HLSResult, profile: ActivityProfile, latency: int
    ) -> float:
        dsp_opcodes = (Opcode.FMUL, Opcode.FADD, Opcode.FSUB, Opcode.MUL)
        ops = 0
        for instr in hls_result.design.function.instructions:
            if instr.opcode in dsp_opcodes:
                ops += profile.result_stats(instr.uid).exec_count
        return ops / latency
