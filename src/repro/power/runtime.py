"""Runtime cost models of the competing power-estimation flows.

Table I reports a 1.47–10.81× (average 4.06×) speedup of PowerGear over the
Vivado power-estimation process.  Both flows start from HLS; the Vivado flow
then needs RTL synthesis + placement + routing, vector-based gate-level
simulation and the power analysis itself, while PowerGear only needs graph
construction and GNN inference.  The models below estimate each step's wall
clock time from design characteristics with constants representative of the
paper's setup (Vivado 2018.2 on a Xeon server); the speedup column is then the
ratio of the two totals for each design point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hls.report import HLSResult


@dataclass(frozen=True)
class FlowRuntimes:
    """Wall-clock estimates, in seconds, of one design point's flows."""

    hls_seconds: float
    implementation_seconds: float
    simulation_seconds: float
    power_analysis_seconds: float
    graph_construction_seconds: float
    inference_seconds: float

    @property
    def vivado_flow_seconds(self) -> float:
        """The Vivado power-estimation flow (HLS + impl + sim + power analysis)."""
        return (
            self.hls_seconds
            + self.implementation_seconds
            + self.simulation_seconds
            + self.power_analysis_seconds
        )

    @property
    def powergear_flow_seconds(self) -> float:
        """The PowerGear flow (HLS + graph construction + GNN inference)."""
        return self.hls_seconds + self.graph_construction_seconds + self.inference_seconds

    @property
    def speedup(self) -> float:
        return self.vivado_flow_seconds / self.powergear_flow_seconds


class RuntimeModel:
    """Estimates flow runtimes from HLS results."""

    # HLS front + back end: scales with the number of static instructions.
    HLS_BASE = 140.0
    HLS_PER_INSTRUCTION = 0.1
    # Synthesis + placement + routing: scales with logic cells.
    IMPL_BASE = 30.0
    IMPL_PER_CELL = 0.03
    # Vector-based gate-level simulation: scales with latency x design size.
    SIM_BASE = 15.0
    SIM_PER_CYCLE_CELL = 3.0e-6
    # Vivado report_power on the simulated activity.
    POWER_ANALYSIS_BASE = 20.0
    POWER_ANALYSIS_PER_CELL = 0.003
    # PowerGear-side steps.
    GRAPH_BASE = 1.5
    GRAPH_PER_INSTRUCTION = 0.004
    INFERENCE_SECONDS = 0.08

    def runtimes(self, hls_result: HLSResult) -> FlowRuntimes:
        instructions = len(hls_result.design.function.instructions)
        cells = hls_result.report.resources.total_cells
        latency = hls_result.report.latency_cycles
        return FlowRuntimes(
            hls_seconds=self.HLS_BASE + self.HLS_PER_INSTRUCTION * instructions,
            implementation_seconds=self.IMPL_BASE + self.IMPL_PER_CELL * cells,
            simulation_seconds=self.SIM_BASE + self.SIM_PER_CYCLE_CELL * latency * cells,
            power_analysis_seconds=self.POWER_ANALYSIS_BASE
            + self.POWER_ANALYSIS_PER_CELL * cells,
            graph_construction_seconds=self.GRAPH_BASE
            + self.GRAPH_PER_INSTRUCTION * instructions,
            inference_seconds=self.INFERENCE_SECONDS,
        )
