"""HLS directives (pragmas) defining one design point.

The paper's design spaces are generated "by applying loop pipelining, loop
unrolling and buffer partitioning" to each PolyBench kernel; a *design point*
is one concrete assignment of these directives.  :class:`DesignDirectives`
captures that assignment and is hashable so design points can be deduplicated
and used as dictionary keys by the design-space generator and the DSE
explorer.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LoopPragmas:
    """Directives attached to a single loop level.

    ``unroll_factor`` of 1 means no unrolling; ``pipeline`` requests an
    initiation-interval-driven schedule for the loop body (only honoured on
    innermost loops, matching common Vivado HLS practice for these kernels).
    """

    unroll_factor: int = 1
    pipeline: bool = False

    def __post_init__(self) -> None:
        if self.unroll_factor < 1:
            raise ValueError(f"unroll factor must be >= 1, got {self.unroll_factor}")

    @property
    def is_default(self) -> bool:
        return self.unroll_factor == 1 and not self.pipeline


@dataclass(frozen=True)
class ArrayPartition:
    """Cyclic array partitioning directive for one buffer.

    Partitioning multiplies the number of physical memory banks (and therefore
    concurrently usable ports) for the buffer by ``factor``.
    """

    factor: int = 1
    kind: str = "cyclic"

    def __post_init__(self) -> None:
        if self.factor < 1:
            raise ValueError(f"partition factor must be >= 1, got {self.factor}")
        if self.kind not in ("cyclic", "block", "complete"):
            raise ValueError(f"unknown partition kind {self.kind!r}")


@dataclass(frozen=True)
class DesignDirectives:
    """A full design point: per-loop pragmas plus per-array partitioning.

    ``loop_pragmas`` maps loop names (as defined by the kernel specification,
    e.g. ``"j"`` for the loop over ``j``) to :class:`LoopPragmas`;
    ``array_partitions`` maps array names to :class:`ArrayPartition`.
    Unmentioned loops/arrays use defaults.
    """

    loop_pragmas: tuple[tuple[str, LoopPragmas], ...] = field(default_factory=tuple)
    array_partitions: tuple[tuple[str, ArrayPartition], ...] = field(default_factory=tuple)

    @staticmethod
    def from_dicts(
        loop_pragmas: dict[str, LoopPragmas] | None = None,
        array_partitions: dict[str, ArrayPartition] | None = None,
    ) -> "DesignDirectives":
        return DesignDirectives(
            tuple(sorted((loop_pragmas or {}).items())),
            tuple(sorted((array_partitions or {}).items())),
        )

    def pragmas_for_loop(self, loop_name: str) -> LoopPragmas:
        for name, pragmas in self.loop_pragmas:
            if name == loop_name:
                return pragmas
        return LoopPragmas()

    def partition_for_array(self, array_name: str) -> ArrayPartition:
        for name, partition in self.array_partitions:
            if name == array_name:
                return partition
        return ArrayPartition()

    @property
    def is_baseline(self) -> bool:
        """True when every directive is the default (the unoptimised design)."""
        return all(p.is_default for _, p in self.loop_pragmas) and all(
            a.factor == 1 for _, a in self.array_partitions
        )

    def describe(self) -> str:
        """Short human-readable description used in logs and examples."""
        loop_bits = [
            f"{name}:u{p.unroll_factor}{'p' if p.pipeline else ''}"
            for name, p in self.loop_pragmas
            if not p.is_default
        ]
        array_bits = [
            f"{name}:x{a.factor}" for name, a in self.array_partitions if a.factor > 1
        ]
        return ",".join(loop_bits + array_bits) or "baseline"


BASELINE_DIRECTIVES = DesignDirectives()
