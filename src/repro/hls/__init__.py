"""HLS substrate: front end (kernel spec -> IR), back end (schedule, bind, report).

This package plays the role of Vivado HLS in the original PowerGear flow.  It
lowers PolyBench-style kernel specifications into the IR of :mod:`repro.ir`
while applying loop directives (pipeline / unroll / array partition), then
schedules the IR into a finite state machine with datapath (FSMD), binds
operations to functional units, and emits an HLS report with latency, achieved
clock period and resource utilisation — exactly the artefacts PowerGear's
graph construction flow and metadata embedding consume.
"""

from repro.hls.pragmas import LoopPragmas, ArrayPartition, DesignDirectives
from repro.hls.op_library import OperatorLibrary, OperatorEntry, DEFAULT_LIBRARY
from repro.hls.frontend import HLSFrontend, lower_kernel
from repro.hls.scheduling import Scheduler, Schedule, LoopSchedule
from repro.hls.binding import Binder, BindingResult, FunctionalUnit
from repro.hls.fsmd import FSMD, FSMDState, build_fsmd
from repro.hls.resources import ResourceEstimator, ResourceUsage
from repro.hls.report import HLSReport, HLSResult, run_hls
from repro.hls.dfg import DataflowGraph, extract_dfg

__all__ = [
    "LoopPragmas",
    "ArrayPartition",
    "DesignDirectives",
    "OperatorLibrary",
    "OperatorEntry",
    "DEFAULT_LIBRARY",
    "HLSFrontend",
    "lower_kernel",
    "Scheduler",
    "Schedule",
    "LoopSchedule",
    "Binder",
    "BindingResult",
    "FunctionalUnit",
    "FSMD",
    "FSMDState",
    "build_fsmd",
    "ResourceEstimator",
    "ResourceUsage",
    "HLSReport",
    "HLSResult",
    "run_hls",
    "DataflowGraph",
    "extract_dfg",
]
