"""Finite state machine with datapath (FSMD) construction.

The HLS back end exposes its scheduling result as an FSMD: control states,
the operations active in each state, and the transitions between states
(sequential plus loop-back edges).  PowerGear's graph construction flow reads
the FSMD to recover the datapath; here it additionally feeds the control-logic
resource estimate (FSM LUT/FF scale with the number of states).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hls.frontend import LoweredDesign
from repro.hls.scheduling import Schedule
from repro.ir.instructions import Instruction
from repro.ir.module import Item, LoopRegion


@dataclass
class FSMDState:
    """One control state and the operations that start in it."""

    state_id: int
    label: str
    operation_uids: list[int] = field(default_factory=list)
    is_loop_body: bool = False
    loop_name: str | None = None


@dataclass
class FSMD:
    """The full controller: states plus (source, target) transition pairs."""

    states: list[FSMDState] = field(default_factory=list)
    transitions: list[tuple[int, int]] = field(default_factory=list)

    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_loop_states(self) -> int:
        return sum(1 for state in self.states if state.is_loop_body)

    def state_of(self, instruction: Instruction) -> FSMDState | None:
        for state in self.states:
            if instruction.uid in state.operation_uids:
                return state
        return None


def build_fsmd(design: LoweredDesign, schedule: Schedule) -> FSMD:
    """Construct the FSMD from the schedule.

    Each straight-line region contributes one state per schedule cycle; each
    loop contributes its body states plus a loop-back transition.  States are
    labelled with the loop they belong to so control-resource estimation and
    debugging stay readable.
    """
    fsmd = FSMD()

    def new_state(label: str, is_loop_body: bool = False, loop_name: str | None = None) -> FSMDState:
        state = FSMDState(len(fsmd.states), label, is_loop_body=is_loop_body, loop_name=loop_name)
        fsmd.states.append(state)
        if state.state_id > 0:
            fsmd.transitions.append((state.state_id - 1, state.state_id))
        return state

    new_state("entry")

    def emit_block(items: list[Item], loop_name: str | None) -> None:
        straightline: list[Instruction] = []

        def flush() -> None:
            if not straightline:
                return
            cycles: dict[int, list[int]] = {}
            for instr in straightline:
                cycle = schedule.op_start_cycle.get(instr.uid, 0)
                cycles.setdefault(cycle, []).append(instr.uid)
            for cycle in sorted(cycles):
                state = new_state(
                    f"{loop_name or 'top'}_c{cycle}",
                    is_loop_body=loop_name is not None,
                    loop_name=loop_name,
                )
                state.operation_uids.extend(cycles[cycle])
            straightline.clear()

        for item in items:
            if isinstance(item, LoopRegion):
                flush()
                loop_entry = len(fsmd.states)
                emit_block(item.body, item.name)
                loop_exit = len(fsmd.states) - 1
                if loop_exit >= loop_entry:
                    fsmd.transitions.append((loop_exit, loop_entry))
            else:
                straightline.append(item)
        flush()

    emit_block(design.function.body, None)
    new_state("exit")
    return fsmd
