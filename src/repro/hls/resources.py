"""Post-HLS resource estimation (LUT / FF / DSP / BRAM).

The estimate combines

* functional-unit costs from the operator library multiplied by the number of
  allocated instances,
* per-instance costs of the non-shared operations (address generation, loads,
  stores, casts),
* multiplexing overhead proportional to each unit's sharing degree,
* FSM control logic proportional to the number of FSMD states,
* pipeline / output registers, and
* BRAM banks derived from array sizes and partition factors (18 Kb blocks,
  matching UltraScale+ RAMB18 primitives).

These figures feed both the metadata embedding of HEC-GNN (the paper uses
LUT / DSP / BRAM, latency and clock from the HLS report) and the power
substrate's leakage / clock-tree models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hls.binding import BindingResult
from repro.hls.frontend import LoweredDesign
from repro.hls.fsmd import FSMD
from repro.hls.op_library import DEFAULT_LIBRARY, OperatorLibrary
from repro.ir.instructions import Opcode
from repro.ir.types import ArrayType, PointerType

#: Capacity of one BRAM primitive in bits (RAMB18).
BRAM_BITS = 18 * 1024

#: Width of the datapath elements (single-precision floats).
DATA_WIDTH = 32


@dataclass(frozen=True)
class ResourceUsage:
    """Resource utilisation of one implemented design."""

    lut: int
    ff: int
    dsp: int
    bram: int

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            self.lut + other.lut,
            self.ff + other.ff,
            self.dsp + other.dsp,
            self.bram + other.bram,
        )

    def scaled(self, factor: float) -> "ResourceUsage":
        return ResourceUsage(
            int(self.lut * factor),
            int(self.ff * factor),
            int(self.dsp * factor),
            int(self.bram * factor),
        )

    def as_dict(self) -> dict[str, int]:
        return {"lut": self.lut, "ff": self.ff, "dsp": self.dsp, "bram": self.bram}

    @property
    def total_cells(self) -> int:
        """Rough count of occupied logic cells, used by the placement surrogate."""
        return self.lut + self.ff // 2 + self.dsp * 50 + self.bram * 100


ZERO_RESOURCES = ResourceUsage(0, 0, 0, 0)


class ResourceEstimator:
    """Estimates post-implementation resources for a scheduled, bound design."""

    def __init__(self, library: OperatorLibrary = DEFAULT_LIBRARY) -> None:
        self.library = library

    def estimate(
        self,
        design: LoweredDesign,
        binding: BindingResult,
        fsmd: FSMD,
    ) -> ResourceUsage:
        units = self._functional_unit_resources(design, binding)
        unshared = self._unshared_resources(design, binding)
        muxes = self._mux_overhead(binding)
        control = self._control_resources(fsmd)
        registers = self._register_resources(design, binding)
        memories = self._memory_resources(design)
        return units + unshared + muxes + control + registers + memories

    # ------------------------------------------------------------------ pieces

    def _functional_unit_resources(
        self, design: LoweredDesign, binding: BindingResult
    ) -> ResourceUsage:
        lut = ff = dsp = 0
        uid_to_opcode = {
            instr.uid: instr.opcode for instr in design.function.instructions
        }
        for unit in binding.units:
            if not unit.instruction_uids:
                continue
            # Characterise the unit by the most expensive opcode mapped onto it.
            entries = [
                self.library.entry(uid_to_opcode[uid]) for uid in unit.instruction_uids
            ]
            lut += max(entry.lut for entry in entries)
            ff += max(entry.ff for entry in entries)
            dsp += max(entry.dsp for entry in entries)
        return ResourceUsage(lut, ff, dsp, 0)

    def _unshared_resources(
        self, design: LoweredDesign, binding: BindingResult
    ) -> ResourceUsage:
        lut = ff = dsp = 0
        for instr in design.function.instructions:
            if binding.unit_of(instr) is not None:
                continue
            entry = self.library.entry(instr.opcode)
            lut += entry.lut
            ff += entry.ff
            dsp += entry.dsp
        return ResourceUsage(lut, ff, dsp, 0)

    @staticmethod
    def _mux_overhead(binding: BindingResult) -> ResourceUsage:
        lut = 0
        for unit in binding.units:
            degree = unit.sharing_degree
            if degree > 1:
                # A degree-k input multiplexer costs roughly width * ceil(log2(k))
                # LUTs per operand; two operands per arithmetic unit.
                lut += 2 * DATA_WIDTH * math.ceil(math.log2(degree))
        return ResourceUsage(lut, 0, 0, 0)

    @staticmethod
    def _control_resources(fsmd: FSMD) -> ResourceUsage:
        states = max(1, fsmd.num_states)
        lut = 3 * states + 16
        ff = max(1, math.ceil(math.log2(states + 1))) + states // 4
        return ResourceUsage(lut, ff, 0, 0)

    @staticmethod
    def _register_resources(design: LoweredDesign, binding: BindingResult) -> ResourceUsage:
        # Each bound operation keeps an output register; loads keep data registers.
        registered_ops = len(binding.assignment)
        loads = sum(
            1 for instr in design.function.instructions if instr.opcode == Opcode.LOAD
        )
        ff = DATA_WIDTH * (registered_ops + loads)
        return ResourceUsage(0, ff, 0, 0)

    @staticmethod
    def _memory_resources(design: LoweredDesign) -> ResourceUsage:
        bram = 0
        lut = 0
        for arg in design.function.args:
            ty = arg.type
            if not isinstance(ty, PointerType) or not isinstance(ty.pointee, ArrayType):
                continue
            array_ty = ty.pointee
            partition = design.array_partitions.get(arg.name)
            banks = partition.factor if partition is not None else 1
            bits_total = array_ty.num_elements * array_ty.element.bit_width
            bits_per_bank = math.ceil(bits_total / banks)
            bram += banks * max(1, math.ceil(bits_per_bank / BRAM_BITS))
            # Bank-selection decoding logic grows with partitioning.
            if banks > 1:
                lut += 8 * banks
        # Internal scalar allocas are implemented in flip-flops; handled in
        # register resources implicitly via their load/store logic.
        return ResourceUsage(lut, 0, 0, bram)
