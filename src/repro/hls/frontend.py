"""HLS front end: lowers kernel specifications into IR.

The front end performs the job of Vivado HLS front-end compilation plus the
loop transformations implied by the design directives:

* arrays become top-level array arguments (candidate I/O buffers),
* loops become structured :class:`~repro.ir.module.LoopRegion` items,
* *loop unrolling* is applied during lowering: a loop with trip count ``T``
  unrolled by ``U`` becomes a loop of ``T / U`` iterations whose body contains
  ``U`` replicas of the original statements, each addressing
  ``indvar * U + u``.  This replication is what creates additional DFG nodes
  (parallel hardware) for aggressively unrolled design points,
* *loop pipelining* does not change the IR; the pragma is attached to the loop
  region and honoured by the scheduler,
* array partitioning does not change the IR either; it is recorded in the
  lowering result and consumed by the scheduler (memory ports) and the
  resource estimator (BRAM banks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hls.pragmas import ArrayPartition, DesignDirectives, LoopPragmas
from repro.ir.builder import IRBuilder
from repro.ir.module import Function
from repro.ir.types import FLOAT32
from repro.ir.validation import validate_function
from repro.ir.values import ArgumentDirection, Value
from repro.kernels.spec import Assign, BinOp, Const, Expr, KernelSpec, Loop, Ref


_DIRECTION_MAP = {
    "in": ArgumentDirection.IN,
    "out": ArgumentDirection.OUT,
    "inout": ArgumentDirection.INOUT,
}


@dataclass
class LoweredDesign:
    """Result of lowering one (kernel, directives) pair."""

    kernel: KernelSpec
    directives: DesignDirectives
    function: Function
    array_partitions: dict[str, ArrayPartition] = field(default_factory=dict)
    loop_pragmas: dict[str, LoopPragmas] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.function.name


class HLSFrontend:
    """Lowers :class:`~repro.kernels.spec.KernelSpec` into IR functions."""

    def __init__(self, validate: bool = True) -> None:
        self.validate = validate

    def lower(self, kernel: KernelSpec, directives: DesignDirectives | None = None) -> LoweredDesign:
        """Lower ``kernel`` under ``directives`` and return the lowered design."""
        directives = directives or DesignDirectives()
        kernel.validate()
        builder = IRBuilder(kernel.name)
        arguments: dict[str, Value] = {}
        for array in kernel.arrays:
            arguments[array.name] = builder.add_array_argument(
                array.name,
                array.shape,
                element=FLOAT32,
                direction=_DIRECTION_MAP[array.direction],
            )

        lowering = _StatementLowering(builder, arguments, kernel, directives)
        for loop in kernel.body:
            lowering.lower_loop(loop, {})
        builder.ret()

        function = builder.build()
        if self.validate:
            validate_function(function)

        partitions = {
            array.name: directives.partition_for_array(array.name)
            for array in kernel.arrays
        }
        pragmas = {
            loop.var: directives.pragmas_for_loop(loop.var) for loop in kernel.all_loops()
        }
        return LoweredDesign(kernel, directives, function, partitions, pragmas)


class _StatementLowering:
    """Internal helper carrying the lowering context (variable bindings)."""

    def __init__(
        self,
        builder: IRBuilder,
        arguments: dict[str, Value],
        kernel: KernelSpec,
        directives: DesignDirectives,
    ) -> None:
        self.builder = builder
        self.arguments = arguments
        self.kernel = kernel
        self.directives = directives

    # ------------------------------------------------------------------ loops

    def lower_loop(self, loop: Loop, bindings: dict[str, Value | int]) -> None:
        pragmas = self.directives.pragmas_for_loop(loop.var)
        unroll = min(pragmas.unroll_factor, loop.trip)
        if loop.trip % unroll != 0:
            # Clamp to the largest divisor below the requested factor, mirroring
            # HLS tools that warn and reduce the factor for non-dividing bounds.
            unroll = _largest_divisor_at_most(loop.trip, unroll)

        if unroll == loop.trip:
            # Fully unrolled: the loop disappears and every iteration is lowered
            # with a constant index.
            for iteration in range(loop.trip):
                self._lower_items(loop.body, {**bindings, loop.var: iteration})
            return

        remaining_trip = loop.trip // unroll
        with self.builder.loop(loop.var, remaining_trip, pragmas=pragmas) as indvar:
            for copy in range(unroll):
                index_value = self._unrolled_index(indvar, unroll, copy)
                self._lower_items(loop.body, {**bindings, loop.var: index_value})

    def _unrolled_index(self, indvar: Value, unroll: int, copy: int) -> Value | int:
        if unroll == 1:
            return indvar
        scaled = self.builder.mul(indvar, self.builder.const_int(unroll))
        if copy == 0:
            return scaled
        return self.builder.add(scaled, self.builder.const_int(copy))

    def _lower_items(self, items: list, bindings: dict[str, Value | int]) -> None:
        for item in items:
            if isinstance(item, Loop):
                self.lower_loop(item, bindings)
            else:
                self.lower_assign(item, bindings)

    # -------------------------------------------------------------- statements

    def lower_assign(self, statement: Assign, bindings: dict[str, Value | int]) -> None:
        value = self.lower_expr(statement.expr, bindings)
        pointer = self._lower_address(statement.target, bindings)
        self.builder.store(value, pointer)

    def lower_expr(self, expr: Expr, bindings: dict[str, Value | int]) -> Value:
        if isinstance(expr, Const):
            return self.builder.const_float(expr.value)
        if isinstance(expr, Ref):
            pointer = self._lower_address(expr, bindings)
            return self.builder.load(pointer, name=f"ld_{expr.array}")
        if isinstance(expr, BinOp):
            lhs = self.lower_expr(expr.lhs, bindings)
            rhs = self.lower_expr(expr.rhs, bindings)
            if expr.op == "+":
                return self.builder.fadd(lhs, rhs)
            if expr.op == "-":
                return self.builder.fsub(lhs, rhs)
            if expr.op == "*":
                return self.builder.fmul(lhs, rhs)
            return self.builder.fdiv(lhs, rhs)
        raise TypeError(f"unsupported expression node {expr!r}")

    def _lower_address(self, ref: Ref, bindings: dict[str, Value | int]) -> Value:
        base = self.arguments[ref.array]
        indices: list[Value] = []
        for index in ref.index:
            indices.append(self._index_value(index, bindings))
        return self.builder.getelementptr(base, indices)

    def _index_value(self, index: str | int, bindings: dict[str, Value | int]) -> Value:
        if isinstance(index, int):
            return self.builder.const_int(index)
        bound = bindings.get(index)
        if bound is None:
            raise KeyError(f"index variable {index!r} is not bound by an enclosing loop")
        if isinstance(bound, int):
            return self.builder.const_int(bound)
        return bound


def _largest_divisor_at_most(value: int, limit: int) -> int:
    for candidate in range(min(limit, value), 0, -1):
        if value % candidate == 0:
            return candidate
    return 1


def lower_kernel(
    kernel: KernelSpec, directives: DesignDirectives | None = None
) -> LoweredDesign:
    """Convenience wrapper around :class:`HLSFrontend`."""
    return HLSFrontend().lower(kernel, directives)
