"""Resource binding: allocation of functional units and operation sharing.

After scheduling, operations of the same sharing class (e.g. all ``fadd`` /
``fsub``) are bound onto a set of functional-unit instances.  The number of
instances is the maximum of

* the peak concurrency observed in the ASAP schedule of straight-line blocks,
  and
* for each pipelined loop, ``ceil(#ops of the class in the body / II)`` —
  the classic throughput-driven allocation of pipelined HLS designs.

The binder assigns every shared operation to a concrete unit instance
(round-robin within its class).  Datapath merging in the graph construction
flow later fuses DFG nodes bound to the same instance, mirroring the paper's
"merge the DFG nodes utilizing the same set of hardware resources".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hls.frontend import LoweredDesign
from repro.hls.op_library import DEFAULT_LIBRARY, OperatorLibrary
from repro.hls.pragmas import LoopPragmas
from repro.hls.scheduling import Schedule
from repro.ir.instructions import Instruction
from repro.ir.module import Item, LoopRegion


@dataclass
class FunctionalUnit:
    """One hardware instance of a shared operator."""

    unit_id: str
    sharing_class: str
    opcode_names: set[str] = field(default_factory=set)
    instruction_uids: list[int] = field(default_factory=list)

    @property
    def sharing_degree(self) -> int:
        """Number of operations multiplexed onto this unit."""
        return len(self.instruction_uids)


@dataclass
class BindingResult:
    """Functional-unit allocation and the op -> unit assignment."""

    units: list[FunctionalUnit] = field(default_factory=list)
    assignment: dict[int, str] = field(default_factory=dict)
    units_per_class: dict[str, int] = field(default_factory=dict)

    def unit_of(self, instruction: Instruction) -> str | None:
        return self.assignment.get(instruction.uid)

    def unit_by_id(self, unit_id: str) -> FunctionalUnit:
        for unit in self.units:
            if unit.unit_id == unit_id:
                return unit
        raise KeyError(f"no functional unit {unit_id!r}")

    @property
    def total_units(self) -> int:
        return len(self.units)

    @property
    def max_sharing_degree(self) -> int:
        return max((unit.sharing_degree for unit in self.units), default=0)


class Binder:
    """Allocates functional units and binds operations to them."""

    def __init__(self, library: OperatorLibrary = DEFAULT_LIBRARY) -> None:
        self.library = library

    def bind(self, design: LoweredDesign, schedule: Schedule) -> BindingResult:
        ops_by_class = self._collect_shared_ops(design)
        required = dict(schedule.max_concurrency)

        for region, pragmas in self._pipelined_loops(design):
            loop_schedule = next(
                (ls for ls in schedule.loop_schedules if ls.loop_name == region.name and ls.pipelined),
                None,
            )
            if loop_schedule is None:
                continue
            ii = max(1, loop_schedule.initiation_interval)
            per_class: dict[str, int] = {}
            for item in region.body:
                if isinstance(item, Instruction):
                    sharing_class = self.library.sharing_class(item.opcode)
                    if sharing_class is not None:
                        per_class[sharing_class] = per_class.get(sharing_class, 0) + 1
            for sharing_class, count in per_class.items():
                required[sharing_class] = max(
                    required.get(sharing_class, 0), math.ceil(count / ii)
                )

        result = BindingResult()
        for sharing_class, instructions in sorted(ops_by_class.items()):
            unit_count = max(1, required.get(sharing_class, 1))
            unit_count = min(unit_count, len(instructions))
            units = [
                FunctionalUnit(f"{sharing_class}_{index}", sharing_class)
                for index in range(unit_count)
            ]
            for position, instr in enumerate(instructions):
                unit = units[position % unit_count]
                unit.instruction_uids.append(instr.uid)
                unit.opcode_names.add(instr.opcode.value)
                result.assignment[instr.uid] = unit.unit_id
            result.units.extend(units)
            result.units_per_class[sharing_class] = unit_count
        return result

    # ------------------------------------------------------------------ helpers

    def _collect_shared_ops(self, design: LoweredDesign) -> dict[str, list[Instruction]]:
        ops: dict[str, list[Instruction]] = {}
        for instr in design.function.instructions:
            sharing_class = self.library.sharing_class(instr.opcode)
            if sharing_class is not None:
                ops.setdefault(sharing_class, []).append(instr)
        return ops

    @staticmethod
    def _pipelined_loops(design: LoweredDesign):
        def visit(items: list[Item]):
            for item in items:
                if isinstance(item, LoopRegion):
                    pragmas = item.pragmas if isinstance(item.pragmas, LoopPragmas) else LoopPragmas()
                    if pragmas.pipeline and not any(
                        isinstance(child, LoopRegion) for child in item.body
                    ):
                        yield item, pragmas
                    yield from visit(item.body)

        yield from visit(design.function.body)
