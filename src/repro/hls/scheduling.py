"""HLS scheduling: ASAP list scheduling with loop pipelining.

The scheduler converts a lowered design into per-instruction start cycles and
per-loop latency figures, honouring the pipeline pragma of each loop region.
Latency composition follows standard HLS practice:

* a straight-line block is scheduled ASAP against data dependencies, with
  per-opcode latencies from the operator library and a serialisation penalty
  when more memory accesses target a buffer than it has ports (two ports per
  physical BRAM bank, multiplied by the array-partition factor),
* a non-pipelined loop costs ``trip * (body_latency + 1) + 1`` cycles (one
  cycle of loop control per iteration),
* a pipelined loop costs ``body_latency + (trip - 1) * II + 2`` cycles where
  the initiation interval ``II`` is the maximum port pressure across buffers.

The resulting :class:`Schedule` exposes the total design latency, the maximum
concurrency per functional-unit sharing class (which drives binding) and the
memory pressure per buffer (which drives BRAM/port estimation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hls.frontend import LoweredDesign
from repro.hls.op_library import DEFAULT_LIBRARY, OperatorLibrary
from repro.hls.pragmas import LoopPragmas
from repro.ir.instructions import Instruction, Opcode
from repro.ir.module import Item, LoopRegion
from repro.ir.validation import pointer_roots

#: Number of concurrently usable ports of one physical BRAM bank (true dual port).
PORTS_PER_BANK = 2


@dataclass
class LoopSchedule:
    """Schedule summary of one loop region."""

    loop_name: str
    pipelined: bool
    initiation_interval: int
    iteration_latency: int
    trip_count: int
    total_latency: int


@dataclass
class Schedule:
    """Full schedule of one design."""

    design: LoweredDesign
    total_latency: int
    op_start_cycle: dict[int, int] = field(default_factory=dict)
    loop_schedules: list[LoopSchedule] = field(default_factory=list)
    max_concurrency: dict[str, int] = field(default_factory=dict)
    memory_accesses: dict[str, int] = field(default_factory=dict)
    buffer_ports: dict[str, int] = field(default_factory=dict)

    @property
    def pipelined_loops(self) -> list[LoopSchedule]:
        return [ls for ls in self.loop_schedules if ls.pipelined]

    def start_cycle(self, instruction: Instruction) -> int:
        return self.op_start_cycle.get(instruction.uid, 0)


class Scheduler:
    """Schedules lowered designs into cycles."""

    def __init__(self, library: OperatorLibrary = DEFAULT_LIBRARY) -> None:
        self.library = library

    def schedule(self, design: LoweredDesign) -> Schedule:
        function = design.function
        roots = pointer_roots(function)
        schedule = Schedule(design=design, total_latency=0)
        for array_name, partition in design.array_partitions.items():
            schedule.buffer_ports[array_name] = PORTS_PER_BANK * partition.factor

        total = self._schedule_block(function.body, design, roots, schedule)
        # Function prologue / epilogue handshake cycles.
        schedule.total_latency = total + 2
        return schedule

    # ------------------------------------------------------------------ internals

    def _schedule_block(
        self,
        items: list[Item],
        design: LoweredDesign,
        roots,
        schedule: Schedule,
    ) -> int:
        """Schedule a body list; returns its latency in cycles."""
        latency = 0
        pending: list[Instruction] = []
        for item in items:
            if isinstance(item, LoopRegion):
                latency += self._flush_straightline(pending, roots, design, schedule)
                pending = []
                latency += self._schedule_loop(item, design, roots, schedule)
            else:
                pending.append(item)
        latency += self._flush_straightline(pending, roots, design, schedule)
        return latency

    def _schedule_loop(
        self,
        region: LoopRegion,
        design: LoweredDesign,
        roots,
        schedule: Schedule,
    ) -> int:
        pragmas = region.pragmas if isinstance(region.pragmas, LoopPragmas) else LoopPragmas()
        has_inner_loop = any(isinstance(item, LoopRegion) for item in region.body)

        if has_inner_loop:
            body_latency = self._schedule_block(region.body, design, roots, schedule)
            total = region.trip_count * (body_latency + 1) + 1
            schedule.loop_schedules.append(
                LoopSchedule(
                    loop_name=region.name,
                    pipelined=False,
                    initiation_interval=body_latency + 1,
                    iteration_latency=body_latency,
                    trip_count=region.trip_count,
                    total_latency=total,
                )
            )
            return total

        body_latency = self._flush_straightline(
            list(region.body), roots, design, schedule
        )
        port_pressure = self._port_pressure(region.body, roots, design, schedule)

        if pragmas.pipeline:
            initiation_interval = max(1, port_pressure)
            total = body_latency + (region.trip_count - 1) * initiation_interval + 2
            pipelined = True
        else:
            initiation_interval = body_latency + 1
            total = region.trip_count * (body_latency + 1) + 1
            pipelined = False

        schedule.loop_schedules.append(
            LoopSchedule(
                loop_name=region.name,
                pipelined=pipelined,
                initiation_interval=initiation_interval,
                iteration_latency=body_latency,
                trip_count=region.trip_count,
                total_latency=total,
            )
        )
        return total

    def _flush_straightline(
        self,
        instructions: list[Instruction],
        roots,
        design: LoweredDesign,
        schedule: Schedule,
    ) -> int:
        """ASAP-schedule a straight-line instruction list; returns its depth."""
        if not instructions:
            return 0
        ready: dict[int, int] = {}
        finish_max = 0
        concurrency: dict[tuple[str, int], int] = {}
        for instr in instructions:
            start = 0
            for operand in instr.operands:
                if operand.uid in ready:
                    start = max(start, ready[operand.uid])
            latency = self.library.latency(instr.opcode)
            finish = start + latency
            ready[instr.uid] = finish
            schedule.op_start_cycle[instr.uid] = start
            finish_max = max(finish_max, finish)

            sharing_class = self.library.sharing_class(instr.opcode)
            if sharing_class is not None:
                key = (sharing_class, start)
                concurrency[key] = concurrency.get(key, 0) + 1

            if instr.opcode in (Opcode.LOAD, Opcode.STORE):
                buffer_name = self._buffer_name(instr, roots)
                schedule.memory_accesses[buffer_name] = (
                    schedule.memory_accesses.get(buffer_name, 0) + 1
                )

        for (sharing_class, _cycle), count in concurrency.items():
            schedule.max_concurrency[sharing_class] = max(
                schedule.max_concurrency.get(sharing_class, 0), count
            )

        serialisation = self._serialisation_penalty(instructions, roots, design, schedule)
        return max(finish_max, serialisation) + 1

    def _port_pressure(
        self, items: list[Item], roots, design: LoweredDesign, schedule: Schedule
    ) -> int:
        """Maximum ceil(accesses / ports) across buffers accessed in ``items``."""
        per_buffer: dict[str, int] = {}
        for item in items:
            if isinstance(item, Instruction) and item.opcode in (Opcode.LOAD, Opcode.STORE):
                name = self._buffer_name(item, roots)
                per_buffer[name] = per_buffer.get(name, 0) + 1
        pressure = 1
        for name, accesses in per_buffer.items():
            ports = schedule.buffer_ports.get(name, PORTS_PER_BANK)
            pressure = max(pressure, math.ceil(accesses / ports))
        return pressure

    def _serialisation_penalty(
        self,
        instructions: list[Instruction],
        roots,
        design: LoweredDesign,
        schedule: Schedule,
    ) -> int:
        per_buffer: dict[str, int] = {}
        for instr in instructions:
            if instr.opcode in (Opcode.LOAD, Opcode.STORE):
                name = self._buffer_name(instr, roots)
                per_buffer[name] = per_buffer.get(name, 0) + 1
        penalty = 0
        for name, accesses in per_buffer.items():
            ports = schedule.buffer_ports.get(name, PORTS_PER_BANK)
            penalty = max(penalty, math.ceil(accesses / ports))
        return penalty

    @staticmethod
    def _buffer_name(instr: Instruction, roots) -> str:
        pointer = instr.operands[0] if instr.opcode == Opcode.LOAD else instr.operands[1]
        root = roots.get(pointer.uid)
        return root.name if root is not None else pointer.name
