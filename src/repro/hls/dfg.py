"""Dataflow graph (DFG) extraction from the HLS IR.

The raw DFG is the starting point of PowerGear's graph construction flow:
every instruction becomes a node, every def-use relation becomes a directed
edge, and loads/stores carry a reference to the buffer (array argument or
``alloca``) they address.  The graph construction passes in
:mod:`repro.graph` transform this raw DFG into the heterogeneous power graph;
the ground-truth power model also consumes the raw DFG directly, because real
power depends on *all* nets, including the trivial ones the model-facing graph
trims away.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.hls.frontend import LoweredDesign
from repro.ir.instructions import Instruction, Opcode
from repro.ir.types import ArrayType, PointerType
from repro.ir.validation import pointer_roots
from repro.ir.values import Argument


@dataclass
class BufferInfo:
    """Description of one memory buffer referenced by the DFG."""

    name: str
    kind: str  # "io" for top-level array arguments, "internal" for allocas
    num_elements: int
    element_bits: int

    @property
    def total_bits(self) -> int:
        return self.num_elements * self.element_bits


@dataclass
class DataflowGraph:
    """Raw dataflow graph plus buffer metadata."""

    graph: nx.DiGraph
    buffers: dict[str, BufferInfo] = field(default_factory=dict)
    instructions: dict[int, Instruction] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    def node_instruction(self, uid: int) -> Instruction:
        return self.instructions[uid]

    def nodes_with_opcode(self, opcode: Opcode) -> list[int]:
        return [
            uid
            for uid, data in self.graph.nodes(data=True)
            if data.get("opcode") == opcode.value
        ]


def extract_dfg(design: LoweredDesign) -> DataflowGraph:
    """Build the raw DFG of a lowered design."""
    function = design.function
    roots = pointer_roots(function)
    graph = nx.DiGraph()
    instructions: dict[int, Instruction] = {}
    buffers: dict[str, BufferInfo] = {}

    for arg in function.args:
        ty = arg.type
        if isinstance(ty, PointerType) and isinstance(ty.pointee, ArrayType):
            array_ty = ty.pointee
            buffers[arg.name] = BufferInfo(
                name=arg.name,
                kind="io",
                num_elements=array_ty.num_elements,
                element_bits=array_ty.element.bit_width,
            )

    for instr in function.instructions:
        if instr.opcode == Opcode.RET:
            continue
        instructions[instr.uid] = instr
        graph.add_node(
            instr.uid,
            opcode=instr.opcode.value,
            category=instr.category.value,
            is_arithmetic=instr.is_arithmetic,
            bitwidth=instr.type.bit_width if instr.has_result else 0,
            name=instr.name,
        )
        if instr.opcode == Opcode.ALLOCA:
            allocated = instr.attrs["allocated_type"]
            if isinstance(allocated, ArrayType):
                num_elements = allocated.num_elements
                element_bits = allocated.element.bit_width
            else:
                num_elements = 1
                element_bits = allocated.bit_width
            buffers[instr.name] = BufferInfo(
                name=instr.name,
                kind="internal",
                num_elements=num_elements,
                element_bits=element_bits,
            )

    for instr in function.instructions:
        if instr.opcode == Opcode.RET:
            continue
        for operand_index, operand in enumerate(instr.operands):
            if isinstance(operand, Instruction) and operand.uid in instructions:
                graph.add_edge(
                    operand.uid,
                    instr.uid,
                    operand_index=operand_index,
                    bitwidth=operand.type.bit_width,
                )
        if instr.opcode in (Opcode.LOAD, Opcode.STORE):
            pointer = instr.operands[0] if instr.opcode == Opcode.LOAD else instr.operands[1]
            root = roots.get(pointer.uid)
            if root is not None:
                buffer_name = root.name if isinstance(root, (Argument, Instruction)) else str(root)
                graph.nodes[instr.uid]["buffer"] = buffer_name

    return DataflowGraph(graph=graph, buffers=buffers, instructions=instructions)
