"""HLS report generation and the top-level ``run_hls`` entry point.

``run_hls`` chains the front end, scheduler, binder, FSMD builder and resource
estimator, returning an :class:`HLSResult` that bundles every artefact the
rest of the PowerGear flow needs: the IR, the schedule, the binding, the FSMD
and the :class:`HLSReport` (latency, achieved clock, resources) from which the
global metadata embedding of HEC-GNN is built.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.hls.binding import Binder, BindingResult
from repro.hls.frontend import HLSFrontend, LoweredDesign
from repro.hls.fsmd import FSMD, build_fsmd
from repro.hls.op_library import DEFAULT_LIBRARY, OperatorLibrary
from repro.hls.pragmas import DesignDirectives
from repro.hls.resources import ResourceEstimator, ResourceUsage
from repro.hls.scheduling import Schedule, Scheduler
from repro.kernels.spec import KernelSpec

#: Target clock period at the paper's 100 MHz operating frequency.
TARGET_CLOCK_NS = 10.0


@dataclass
class HLSReport:
    """Summary report of one HLS run (the paper's "global metadata" source)."""

    kernel_name: str
    directives: DesignDirectives
    latency_cycles: int
    target_clock_ns: float
    achieved_clock_ns: float
    resources: ResourceUsage
    fsm_states: int

    @property
    def latency_seconds(self) -> float:
        return self.latency_cycles * self.target_clock_ns * 1e-9

    def metadata_vector(self, baseline: "HLSReport | None" = None) -> np.ndarray:
        """Global metadata features for the GNN (Section III-B).

        The paper uses LUT / DSP / BRAM utilisation, latency and achieved
        clock period, plus their ratios over the unoptimised baseline design.
        Counts are log-compressed so that widely varying magnitudes remain
        comparable.
        """
        base = baseline or self
        metrics = np.array(
            [
                self.resources.lut,
                self.resources.dsp,
                self.resources.bram,
                self.latency_cycles,
                self.achieved_clock_ns,
            ],
            dtype=float,
        )
        base_metrics = np.array(
            [
                base.resources.lut,
                base.resources.dsp,
                base.resources.bram,
                base.latency_cycles,
                base.achieved_clock_ns,
            ],
            dtype=float,
        )
        ratios = metrics / np.maximum(base_metrics, 1e-9)
        return np.concatenate([np.log1p(metrics), ratios])


@dataclass
class HLSResult:
    """Every artefact produced by one HLS run."""

    design: LoweredDesign
    schedule: Schedule
    binding: BindingResult
    fsmd: FSMD
    report: HLSReport

    @property
    def function(self):
        return self.design.function

    @property
    def kernel_name(self) -> str:
        return self.design.kernel.name


def _achieved_clock_ns(
    design: LoweredDesign,
    resources: ResourceUsage,
    library: OperatorLibrary,
    target_clock_ns: float,
) -> float:
    """Deterministic achieved-clock model: slowest operator plus congestion.

    Larger designs suffer routing congestion that degrades timing; the model
    adds a logarithmic penalty in total cell count on top of the slowest
    operator delay, saturating a little above the target period (HLS reports
    occasionally miss timing slightly for big unrolled designs).
    """
    used_delays = [
        library.delay_ns(instr.opcode) for instr in design.function.instructions
    ]
    slowest = max(used_delays) if used_delays else 1.0
    congestion = 1.0 + 0.04 * math.log1p(resources.total_cells / 5000.0)
    achieved = slowest * congestion
    return float(min(max(achieved, 0.5), target_clock_ns * 1.15))


def run_hls(
    kernel: KernelSpec,
    directives: DesignDirectives | None = None,
    library: OperatorLibrary = DEFAULT_LIBRARY,
    target_clock_ns: float = TARGET_CLOCK_NS,
) -> HLSResult:
    """Run the full HLS flow for one design point."""
    directives = directives or DesignDirectives()
    design = HLSFrontend().lower(kernel, directives)
    schedule = Scheduler(library).schedule(design)
    binding = Binder(library).bind(design, schedule)
    fsmd = build_fsmd(design, schedule)
    resources = ResourceEstimator(library).estimate(design, binding, fsmd)
    report = HLSReport(
        kernel_name=kernel.name,
        directives=directives,
        latency_cycles=schedule.total_latency,
        target_clock_ns=target_clock_ns,
        achieved_clock_ns=_achieved_clock_ns(design, resources, library, target_clock_ns),
        resources=resources,
        fsm_states=fsmd.num_states,
    )
    return HLSResult(design, schedule, binding, fsmd, report)
