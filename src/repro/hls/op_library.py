"""Operator characterisation library.

Each IR opcode maps to an :class:`OperatorEntry` describing its hardware cost
on the target device: latency in cycles at the target clock, resource usage of
one functional-unit instance (LUT / FF / DSP), the combinational delay of the
unit (used for the achieved-clock-period model) and an energy scale used by
the power substrate.  The numbers follow the characteristics of Xilinx
UltraScale+ floating-point operator IP at 100 MHz (the paper's target); they
only need to be *relatively* consistent, since the GNN never sees them
directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.instructions import Opcode


@dataclass(frozen=True)
class OperatorEntry:
    """Hardware characterisation of one operator type."""

    latency: int
    lut: int
    ff: int
    dsp: int
    delay_ns: float
    energy_scale: float

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("operator latency must be non-negative")
        if min(self.lut, self.ff, self.dsp) < 0:
            raise ValueError("operator resources must be non-negative")


_DEFAULT_ENTRIES: dict[Opcode, OperatorEntry] = {
    # Memory: BRAM accesses take one cycle for address, one for data.
    Opcode.ALLOCA: OperatorEntry(0, 0, 0, 0, 0.0, 0.0),
    Opcode.GETELEMENTPTR: OperatorEntry(0, 12, 8, 0, 0.9, 0.2),
    Opcode.LOAD: OperatorEntry(2, 20, 24, 0, 2.2, 1.0),
    Opcode.STORE: OperatorEntry(1, 16, 16, 0, 1.8, 1.0),
    # Single-precision floating point operators (UltraScale+ full-DSP variants).
    Opcode.FADD: OperatorEntry(4, 200, 320, 2, 6.4, 2.5),
    Opcode.FSUB: OperatorEntry(4, 205, 320, 2, 6.4, 2.5),
    Opcode.FMUL: OperatorEntry(3, 90, 180, 3, 5.8, 3.0),
    Opcode.FDIV: OperatorEntry(12, 780, 1460, 0, 8.3, 6.0),
    # Integer arithmetic.
    Opcode.ADD: OperatorEntry(0, 32, 32, 0, 1.4, 0.4),
    Opcode.SUB: OperatorEntry(0, 32, 32, 0, 1.4, 0.4),
    Opcode.MUL: OperatorEntry(1, 40, 64, 1, 3.9, 1.2),
    Opcode.SDIV: OperatorEntry(8, 420, 600, 0, 7.5, 4.0),
    # Comparisons and selection.
    Opcode.ICMP: OperatorEntry(0, 18, 8, 0, 1.1, 0.2),
    Opcode.FCMP: OperatorEntry(1, 60, 80, 0, 2.8, 0.6),
    Opcode.SELECT: OperatorEntry(0, 16, 8, 0, 0.8, 0.2),
    # Casts: free or nearly free in hardware (wiring / small logic).
    Opcode.SEXT: OperatorEntry(0, 0, 0, 0, 0.1, 0.05),
    Opcode.ZEXT: OperatorEntry(0, 0, 0, 0, 0.1, 0.05),
    Opcode.TRUNC: OperatorEntry(0, 0, 0, 0, 0.1, 0.05),
    Opcode.SITOFP: OperatorEntry(3, 120, 180, 0, 4.5, 1.0),
    Opcode.FPTOSI: OperatorEntry(3, 120, 180, 0, 4.5, 1.0),
    Opcode.BITCAST: OperatorEntry(0, 0, 0, 0, 0.0, 0.0),
    # Bitwise logic.
    Opcode.AND: OperatorEntry(0, 16, 8, 0, 0.7, 0.15),
    Opcode.OR: OperatorEntry(0, 16, 8, 0, 0.7, 0.15),
    Opcode.XOR: OperatorEntry(0, 16, 8, 0, 0.7, 0.15),
    Opcode.SHL: OperatorEntry(0, 24, 8, 0, 1.0, 0.2),
    Opcode.LSHR: OperatorEntry(0, 24, 8, 0, 1.0, 0.2),
    Opcode.ASHR: OperatorEntry(0, 24, 8, 0, 1.0, 0.2),
    # Control.
    Opcode.PHI: OperatorEntry(0, 8, 8, 0, 0.5, 0.1),
    Opcode.RET: OperatorEntry(0, 0, 0, 0, 0.0, 0.0),
}

#: Opcode classes that share functional units of the same kind during binding.
SHARING_CLASSES: dict[Opcode, str] = {
    Opcode.FADD: "fadd_fsub",
    Opcode.FSUB: "fadd_fsub",
    Opcode.FMUL: "fmul",
    Opcode.FDIV: "fdiv",
    Opcode.MUL: "imul",
    Opcode.SDIV: "idiv",
    Opcode.ADD: "ialu",
    Opcode.SUB: "ialu",
    Opcode.ICMP: "ialu",
    Opcode.FCMP: "fcmp",
}


class OperatorLibrary:
    """Lookup table from opcode to :class:`OperatorEntry`."""

    def __init__(self, entries: dict[Opcode, OperatorEntry] | None = None) -> None:
        self.entries = dict(_DEFAULT_ENTRIES)
        if entries:
            self.entries.update(entries)

    def entry(self, opcode: Opcode) -> OperatorEntry:
        if opcode not in self.entries:
            raise KeyError(f"operator library has no entry for opcode {opcode}")
        return self.entries[opcode]

    def latency(self, opcode: Opcode) -> int:
        return self.entry(opcode).latency

    def delay_ns(self, opcode: Opcode) -> float:
        return self.entry(opcode).delay_ns

    def sharing_class(self, opcode: Opcode) -> str | None:
        """Functional-unit class for resource sharing, or None for free ops."""
        return SHARING_CLASSES.get(opcode)

    def with_overrides(self, **overrides: OperatorEntry) -> "OperatorLibrary":
        """Return a copy with entries overridden by opcode name."""
        extra = {Opcode(name): entry for name, entry in overrides.items()}
        return OperatorLibrary({**self.entries, **extra})


DEFAULT_LIBRARY = OperatorLibrary()
