"""The power-estimation service façade.

:class:`PowerEstimationService` is the request/response layer on top of the
reproduction: a fitted :class:`~repro.flow.powergear.PowerGear` (either passed
in or loaded from a :class:`~repro.serve.registry.ModelRegistry` artifact),
the featurisation pipeline, the content-addressed
:class:`~repro.serve.cache.InferenceCache` and the batched inference engine,
behind three endpoints:

* :meth:`~PowerEstimationService.estimate` — one design point;
* :meth:`~PowerEstimationService.estimate_many` — a request batch: cache
  lookups first (featurisation by ``(kernel, directives)`` content address,
  predictions by graph-content x model fingerprint), then one grouped
  featurisation pass per kernel and one batched ensemble forward pass for
  every remaining miss;
* :meth:`~PowerEstimationService.explore` — the paper's DSE case study as a
  service call: drive :class:`~repro.dse.explorer.ParetoExplorer` over a
  kernel's design space with the cached, batched predictor as the fast oracle.

Every endpoint records wall-clock latency and throughput in
:class:`ServiceMetrics`.

The service optionally runs on the parallel runtime of :mod:`repro.runtime`
(pass ``runtime=RuntimeConfig(...)``): featurisation of large batches shards
across a multi-process :class:`~repro.runtime.pool.WorkerPool`, the packed
forward of a large ensemble shards across a
:class:`~repro.runtime.pool.ForwardPool` on shared-memory parameter blocks,
concurrent single-design ``estimate`` calls coalesce into packed batches
through a :class:`~repro.runtime.microbatch.MicroBatcher`, and the inference
cache gains a persistent on-disk tier
(:class:`~repro.runtime.cache.PersistentCache`) with cost-aware eviction so
warm sets survive restarts.  All of them preserve the serial path's results
exactly.

Both pools run under :class:`~repro.runtime.supervisor.SupervisedPool`: a
crashed worker restarts within ``RuntimeConfig.pool_max_restarts`` (with
exponential backoff) instead of retiring the pool on the first strike, the
featurisation pool autoscales between ``num_workers_min`` and
``num_workers_max`` with queue depth, and per-pool health snapshots surface
through :meth:`PowerEstimationService.runtime_stats`,
:meth:`PowerEstimationService.health` and the HTTP ``/metrics`` /
``/healthz`` endpoints.

Every forward-path kernel routes through the compute backend named by
``RuntimeConfig.backend`` (or ``$REPRO_BACKEND``; see :mod:`repro.backend`):
the service pins the resolved backend around its prediction calls, reports
it in :class:`ServiceMetrics`, and exports the per-backend forward counters
through :meth:`PowerEstimationService.runtime_stats` and the HTTP
``/metrics`` endpoint.

A registry-backed service also holds a
:class:`~repro.deploy.resolver.ModelResolver`: each request batch resolves
against one immutable snapshot of the live :mod:`deployment plan
<repro.deploy>` (kernel patterns → artifact ``(name, version)``, optional
canary/shadow challenger split by a deterministic hash of the design point),
so a promote or rollback mid-load never mixes artifacts within one batch,
and with no plan installed every path — fresh, cached, pooled, coalesced —
is bitwise-identical to the single-model service this layer replaced.
Challenger-arm designs are predicted by *both* arms; the divergence is
exported as drift metrics, and in shadow mode the champion's answer is what
callers receive.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.backend import (
    get_backend,
    instantiated_backends,
    resolve_backend_name,
    use_backend,
)
from repro.dse.explorer import (
    DesignCandidate,
    DSEConfig,
    DSEResult,
    ExplorationState,
    ParetoExplorer,
)
from repro.flow.dataset_gen import DatasetGenerator
from repro.flow.powergear import PowerGear
from repro.hls.op_library import DEFAULT_LIBRARY
from repro.hls.pragmas import DesignDirectives
from repro.graph.dataset import GraphSample
from repro.kernels.polybench import polybench_kernel
from repro.runtime import (
    ForwardPool,
    ForwardPoolStats,
    ItemError,
    MicroBatcher,
    PersistentCache,
    PoolRetiredError,
    PoolStats,
    RuntimeConfig,
    SupervisedPool,
    WorkerPool,
)
from repro.deploy.plan import DeploymentPlan
from repro.deploy.resolver import ModelResolver, ResolvedModel
from repro.obs import Observability
from repro.obs.logs import log_event
from repro.obs.metrics import json_safe
from repro.serve.cache import InferenceCache, sample_fingerprint
from repro.serve.registry import ModelRegistry, load_artifact_dir


# ------------------------------------------------------------------ requests


@dataclass(frozen=True)
class EstimateRequest:
    """One design point to estimate.

    Either ``directives`` (the service featurises the design itself) or a
    pre-featurised ``sample`` must be provided.
    """

    kernel: str
    directives: DesignDirectives | None = None
    sample: GraphSample | None = None

    def __post_init__(self) -> None:
        if (self.directives is None) == (self.sample is None):
            raise ValueError("provide exactly one of directives or sample")

    @staticmethod
    def from_sample(sample: GraphSample) -> "EstimateRequest":
        return EstimateRequest(kernel=sample.kernel, sample=sample)

    @property
    def directives_key(self) -> str:
        if self.sample is not None:
            return self.sample.directives
        return self.directives.describe()


@dataclass(frozen=True)
class EstimateResponse:
    """Predicted power of one design point.

    ``latency_ms`` is the wall-clock latency of the service call that produced
    this response (shared by every response of one ``estimate_many`` batch).
    """

    kernel: str
    directives: str
    power: float
    target: str
    cached_features: bool
    cached_prediction: bool
    latency_ms: float
    model_fingerprint: str
    #: Which artifact served this design and in what role — present only when
    #: a deployment plan resolved the request (``None`` keeps the no-plan wire
    #: format byte-identical to the pre-deployment service).
    served_by: dict | None = None


@dataclass(frozen=True)
class FrontierDesign:
    """One approximate-Pareto design returned by :meth:`explore`."""

    kernel: str
    directives: str
    latency_cycles: int
    predicted_power: float
    measured_power: float


@dataclass
class ExploreReport:
    """Outcome of one service-side design-space exploration."""

    kernel: str
    budget: float
    result: DSEResult
    frontier: list[FrontierDesign]
    num_candidates: int
    elapsed_seconds: float

    @property
    def adrs(self) -> float:
        return self.result.adrs


class ExplorationSession:
    """One exploration, driven incrementally over the service's predictor.

    Both explore paths share this object: the blocking
    :meth:`PowerEstimationService.explore` runs ``step()`` to completion in
    one call, the async job service runs one ``step()`` per scheduling slice
    and checkpoints ``session.state`` between them.  Because the state *is*
    the loop (see :class:`~repro.dse.explorer.ExplorationState`), the two
    drivers — and a driver resumed from a checkpoint in a fresh process —
    produce bitwise-identical frontiers, ADRS and predictions.
    """

    def __init__(
        self,
        service: "PowerEstimationService",
        kernel: str,
        config: DSEConfig,
        candidates: list[DesignCandidate],
        state: ExplorationState | None = None,
        plan: DeploymentPlan | None = None,
    ) -> None:
        self.service = service
        self.kernel = kernel
        self.config = config
        self.candidates = candidates
        # The deployment plan this exploration is pinned to: every step of
        # every slice — including slices run after a crash-resume in a fresh
        # process — predicts through this one immutable plan, so publishes
        # that land mid-job cannot change the trajectory and resume stays
        # bitwise.
        self.plan = plan
        self.explorer = ParetoExplorer(config)
        self.state = state if state is not None else self.explorer.start(candidates)
        self._started = time.perf_counter()

    @property
    def done(self) -> bool:
        return self.state.done

    @property
    def plan_seq(self) -> int | None:
        """Seq of the pinned deployment plan (checkpointed by the job tier)."""
        return self.plan.seq if self.plan is not None else None

    def step(self) -> dict:
        """One explorer iteration (predict → frontier → select next batch)."""
        return self.explorer.step(self.candidates, self.state, self._predictor)

    def _predictor(self, batch: list[DesignCandidate]) -> np.ndarray:
        predictions, _, _ = self.service._predict_samples(
            [c.payload for c in batch], plan=self.plan
        )
        return predictions

    def report(self) -> "ExploreReport":
        """Finalise and account the exploration (frontier, ADRS, metrics).

        ``elapsed_seconds`` covers this session object's lifetime — for a
        resumed job that is the final slice, not the pre-crash time, which
        is the honest number (wall-clock is the one field exempt from the
        bitwise contract).
        """
        service = self.service
        result = self.explorer.finalize(self.candidates, self.state)
        frontier = [
            FrontierDesign(
                kernel=self.candidates[i].payload.kernel,
                directives=self.candidates[i].payload.directives,
                latency_cycles=int(self.candidates[i].latency),
                predicted_power=result.predictions.get(i, float("nan")),
                measured_power=self.candidates[i].true_power,
            )
            for i in result.approximate_pareto_indices
        ]
        if service.cache.persistent is not None:
            service.cache.persistent.sync()
        elapsed = time.perf_counter() - self._started
        service.metrics.record(explorations=1, total_seconds=elapsed)
        service.obs.request_seconds.labels(endpoint="explore").observe(elapsed)
        log_event(
            service.obs.logger,
            "request",
            endpoint="explore",
            kernel=self.kernel,
            candidates=len(self.candidates),
            latency_ms=round(elapsed * 1e3, 3),
        )
        return ExploreReport(
            kernel=self.kernel,
            budget=self.config.total_budget,
            result=result,
            frontier=frontier,
            num_candidates=len(self.candidates),
            elapsed_seconds=elapsed,
        )


@dataclass
class ServiceMetrics:
    """Latency / throughput instrumentation of the service.

    Thread-safe: the micro-batcher records latencies from whichever caller
    thread claims a flush, so every mutation goes through :meth:`record`,
    which holds an internal lock.  ``snapshot`` takes the same lock so its
    view is consistent (no torn reads between related counters).
    """

    requests: int = 0
    designs: int = 0
    batches: int = 0
    featurised: int = 0
    pooled_featurised: int = 0
    predicted: int = 0
    pooled_predicted: int = 0
    pooled_errors: int = 0
    pool_restarts: int = 0
    featurise_seconds: float = 0.0
    predict_seconds: float = 0.0
    total_seconds: float = 0.0
    explorations: int = 0
    #: Name of the compute backend the service's forwards route through
    #: (informational, set once at service construction — not a counter).
    backend: str = ""
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, **deltas: float) -> None:
        """Atomically add ``deltas`` to the named counters."""
        with self._lock:
            for name, delta in deltas.items():
                if name.startswith("_") or not hasattr(self, name):
                    raise AttributeError(f"ServiceMetrics has no counter {name!r}")
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> dict:
        """Point-in-time metrics dictionary (counts, seconds, throughput)."""
        with self._lock:
            return {
                "requests": self.requests,
                "designs": self.designs,
                "batches": self.batches,
                "featurised": self.featurised,
                "pooled_featurised": self.pooled_featurised,
                "predicted": self.predicted,
                "pooled_predicted": self.pooled_predicted,
                "pooled_errors": self.pooled_errors,
                "pool_restarts": self.pool_restarts,
                "explorations": self.explorations,
                "backend": self.backend,
                "featurise_seconds": self.featurise_seconds,
                "predict_seconds": self.predict_seconds,
                "total_seconds": self.total_seconds,
                "designs_per_second": (
                    self.designs / self.total_seconds if self.total_seconds > 0 else 0.0
                ),
                # Guarded means: a fresh service reports 0.0, never NaN —
                # /metrics serialises with allow_nan=False and one stray
                # non-finite float would turn a scrape into a 500.
                "mean_featurise_ms_per_design": (
                    self.featurise_seconds * 1e3 / self.featurised
                    if self.featurised
                    else 0.0
                ),
                "mean_predict_ms_per_design": (
                    self.predict_seconds * 1e3 / self.predicted
                    if self.predicted
                    else 0.0
                ),
            }


# ------------------------------------------------------------------- service


class PowerEstimationService:
    """Batched, cached power estimation behind a small request/response API."""

    def __init__(
        self,
        model: PowerGear | None = None,
        *,
        registry: ModelRegistry | str | Path | None = None,
        model_name: str | None = None,
        model_version: int | None = None,
        generator: DatasetGenerator | None = None,
        cache: InferenceCache | None = None,
        batch_size: int = 64,
        runtime: RuntimeConfig | None = None,
    ) -> None:
        if registry is not None and not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        default_version = model_version
        if model is None:
            if registry is None or model_name is None:
                raise ValueError(
                    "provide a fitted model, or a registry plus model_name to load one"
                )
            artifact = registry.load_artifact(model_name, model_version)
            model = load_artifact_dir(artifact.path)
            # Pin the *resolved* version: the resolver must know the default
            # artifact's identity so plan rules naming it reuse the already
            # loaded (and pool-published) model instead of a cache copy.
            default_version = artifact.version
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.model = model
        self.generator = generator or DatasetGenerator()
        self.runtime = runtime or RuntimeConfig()
        # One observability bundle per service (tracer + metrics registry +
        # event timeline + structured logger); every runtime layer below gets
        # a handle into it.  Built before the cache/pools so construction-time
        # conditions (e.g. a read-only disk tier) land in the timeline too.
        self.obs = Observability(
            tracing=self.runtime.tracing,
            trace_ring=self.runtime.trace_ring,
            event_ring=self.runtime.event_ring,
        )
        cache = cache or InferenceCache()
        if self.runtime.persistence_enabled and cache.persistent is None:
            cache.persistent = PersistentCache(
                self.runtime.persistent_cache_dir,
                max_bytes=self.runtime.persistent_cache_max_bytes,
            )
        cache.observer = self.obs
        if cache.persistent is not None and getattr(
            cache.persistent, "read_only", False
        ):
            self.obs.pool_event(
                "cache_read_only",
                pool="persistent_cache",
                directory=str(self.runtime.persistent_cache_dir),
            )
        self.cache = cache
        self.batch_size = batch_size
        # The compute backend every forward of this service routes through
        # (explicit config > $REPRO_BACKEND > the numpy reference).
        self.backend = get_backend(resolve_backend_name(self.runtime.backend))
        self.metrics = ServiceMetrics(backend=self.backend.name)
        self.model_fingerprint = model.fingerprint()
        # The deployment layer: a registry-backed service resolves every
        # request batch against the live plan; without a registry there is
        # nothing to resolve artifacts from, so the resolver is None and the
        # deployment API reports itself disabled.
        self.registry = registry
        self.resolver: ModelResolver | None = None
        if registry is not None:
            self.resolver = ModelResolver(
                registry,
                default_model=model,
                default_name=model_name,
                default_version=default_version,
                default_fingerprint=self.model_fingerprint,
                cache_entries=self.runtime.deploy_artifact_cache_entries,
                on_evict=lambda key, value: self.obs.pool_event(
                    "artifact_evicted", pool="deploy", artifact=key
                ),
            )
        self._default_resolved = (
            self.resolver.default
            if self.resolver is not None
            else ResolvedModel(
                name=model_name,
                version=default_version,
                role="default",
                model=model,
                fingerprint=self.model_fingerprint,
            )
        )
        # Pools live behind supervisors (repro.runtime.supervisor): crashes
        # restart the pool within RuntimeConfig.pool_max_restarts instead of
        # retiring it on the first strike, and the featurisation pool
        # autoscales with queue depth.  The stats objects are service-owned
        # so lifetime counters survive pool rebuilds.
        self._feat_supervisor: SupervisedPool | None = None
        self._forward_supervisor: SupervisedPool | None = None
        self._pool_stats = PoolStats()
        self._forward_pool_stats = ForwardPoolStats()
        # Consecutive non-crash pooled failures per supervisor name: crashes
        # are the supervisor's restart budget, but a pool that fails
        # *deterministically* (e.g. construction-time validation) would
        # otherwise re-pay its doomed setup on every batch forever.
        self._pool_strikes: dict[str, int] = {}
        self._pool_lock = threading.Lock()
        # In-process forward passes flip the model's train/eval mode and the
        # process-wide autograd flag, so concurrent batches (the gateway runs
        # each estimate_many batch in its own bridge thread) must take turns
        # on the model.  Pooled forwards run in single-threaded workers and
        # don't need it.
        self._model_lock = threading.Lock()
        self._closed = False
        self._close_hooks: list = []
        self._batcher: MicroBatcher | None = None
        if self.runtime.coalescing_enabled:
            self._batcher = MicroBatcher(
                self._coalesced_flush,
                max_batch=self.runtime.coalesce_max_batch,
                max_delay=self.runtime.coalesce_window_ms / 1e3,
                tracer=self.obs.tracer,
            )

    @property
    def target(self) -> str:
        return self.model.config.target

    # --------------------------------------------------------------- lifecycle

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has started (the service runs degraded)."""
        return self._closed

    def add_close_hook(self, hook) -> None:
        """Register a zero-argument callable to run first when :meth:`close` runs.

        Front ends layered over the service (the async gateway, an HTTP
        server) register themselves here so a service shutdown propagates
        outward: the hook runs before any runtime component is torn down,
        letting the front end stop admitting new requests while the ones
        already in flight still complete on the degraded serial path.  Hooks
        run at most once; exceptions are the hook's problem, not the close's
        (a failing front end must not leak worker processes).
        """
        self._close_hooks.append(hook)

    def remove_close_hook(self, hook) -> None:
        """Deregister a close hook; no-op if absent (or already consumed).

        Front ends that close before the service must deregister, or a
        long-lived service would keep every dead front end reachable through
        its hook list.
        """
        try:
            self._close_hooks.remove(hook)
        except ValueError:
            pass

    def close(self) -> None:
        """Flush pending coalesced work, stop the worker pool, sync the disk tier.

        Idempotent.  The service stays usable afterwards but degrades to the
        plain serial path: no new worker pool is ever spawned (a closed
        service must not resurrect worker processes), and coalescing is off.
        """
        log_event(self.obs.logger, "service.close", already_closed=self._closed)
        hooks, self._close_hooks = self._close_hooks, []
        for hook in hooks:
            try:
                hook()
            except Exception:
                pass
        batcher, self._batcher = self._batcher, None
        if batcher is not None:
            batcher.close()
        with self._pool_lock:
            self._closed = True
            feat, self._feat_supervisor = self._feat_supervisor, None
            forward, self._forward_supervisor = self._forward_supervisor, None
        if feat is not None:
            feat.close()
        if forward is not None:
            forward.close()
        if self.cache.persistent is not None:
            # Persist pending mutations and release the directory's owner
            # lock (another process may take over); the tier keeps serving
            # reads on the degraded path but becomes read-only.
            close = getattr(self.cache.persistent, "close", None)
            if close is not None:
                close()
            else:  # duck-typed tier without a close: at least persist
                self.cache.persistent.sync()

    def __enter__(self) -> "PowerEstimationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def runtime_stats(self) -> dict:
        """Instrumentation of the runtime components (pools, coalescer, caches).

        Each pool entry merges the pool's lifetime throughput counters
        (which survive supervised restarts and resizes) with the
        supervisor's health snapshot under ``"supervisor"`` (state, current
        size, queue depth, restart budget, last fault).

        ``backend`` reports the active compute backend plus the per-backend
        forward counters (process-wide singletons, so the numbers aggregate
        across services sharing the process).
        """
        feat = self._feat_supervisor
        forward = self._forward_supervisor
        return {
            "pool": (
                {**self._pool_stats.as_dict(), "supervisor": feat.health()}
                if feat is not None
                else None
            ),
            "forward_pool": (
                {**self._forward_pool_stats.as_dict(), "supervisor": forward.health()}
                if forward is not None
                else None
            ),
            "coalescer": (
                self._batcher.stats.as_dict() if self._batcher is not None else None
            ),
            "cache": self.cache.stats(),
            "backend": {
                "active": self.backend.name,
                "accelerator": self.backend.accelerator,
                # Only backends this process actually constructed: reading
                # counters must never trigger another backend's accelerator
                # probe inside a metrics scrape.
                "counters": {
                    name: backend.stats.as_dict()
                    for name, backend in instantiated_backends().items()
                },
            },
        }

    def metrics_snapshot(self) -> dict:
        """One consistent, JSON-serialisable view of the whole service.

        Combines the endpoint counters (:class:`ServiceMetrics`), real
        latency quantiles from the histogram registry (p50/p95/p99 per
        endpoint and per stage), the runtime instrumentation (pool /
        coalescer / cache tiers) and the model identity; this is what the
        HTTP ``/metrics`` endpoint exports.  Routed through
        :func:`repro.obs.metrics.json_safe`: strict JSON out, never
        ``NaN``/``Infinity``.
        """
        self._refresh_heartbeat_gauges()
        return json_safe(
            {
                "service": self.metrics.snapshot(),
                "latency": {
                    "request": self.obs.request_seconds.snapshot(),
                    "stages": self.obs.stage_seconds.snapshot(),
                },
                "observability": self.obs.snapshot(),
                "runtime": self.runtime_stats(),
                "model": {
                    "fingerprint": self.model_fingerprint,
                    "target": self.target,
                },
                "deployment": (
                    self.resolver.describe() if self.resolver is not None else None
                ),
                "closed": self._closed,
            }
        )

    def _refresh_heartbeat_gauges(self) -> None:
        """Project per-worker last-heartbeat ages into the metrics registry."""
        for name, supervisor in (
            ("featurisation", self._feat_supervisor),
            ("forward", self._forward_supervisor),
        ):
            if supervisor is None:
                continue
            heartbeats = supervisor.health().get("heartbeats") or {}
            for pid, info in heartbeats.items():
                self.obs.worker_heartbeat_age.labels(pool=name, pid=str(pid)).set(
                    info["age_s"]
                )

    def health(self) -> dict:
        """Liveness/degradation summary (what the HTTP ``/healthz`` serves).

        ``status`` is ``"ok"`` while every supervised pool is healthy,
        ``"degraded"`` while any pool is in post-crash backoff or retired to
        the serial path (the service still answers every request — results
        are identical on the serial path, only slower), and ``"closed"``
        after :meth:`close`.
        """
        pools = {}
        feat = self._feat_supervisor
        forward = self._forward_supervisor
        if feat is not None:
            pools["featurisation"] = feat.health()
        if forward is not None:
            pools["forward"] = forward.health()
        if self._closed:
            status = "closed"
        elif any(entry["state"] != "ok" for entry in pools.values()):
            status = "degraded"
        else:
            status = "ok"
        payload = {
            "status": status,
            # The cluster router compares fingerprints across replicas to
            # catch a mixed-version replica set before it serves divergent
            # predictions.
            "model_fingerprint": self.model_fingerprint,
            "pools": pools,
            # The recent tail of the lifecycle timeline (crash / restart /
            # scale / retire / degrade), oldest first — the full ring is at
            # GET /v1/events.
            "events": self.obs.events.snapshot(limit=50),
        }
        if self.resolver is not None:
            # The live plan seq (stat-revalidated, so replicas sharing the
            # registry directory report the same number the instant a publish
            # lands).  The cluster router compares this across replicas: under
            # a plan, *fingerprints* legitimately differ per design, but the
            # plan seq must converge.
            payload["deployment_seq"] = self.resolver.current_seq()
        return payload

    # --------------------------------------------------------------- endpoints

    def estimate(self, request: EstimateRequest) -> EstimateResponse:
        """Estimate one design point (featurise → predict, both cached).

        With coalescing enabled (``runtime.coalesce_window_ms > 0``) the call
        parks in the micro-batcher until its batch flushes, so concurrent
        single-design callers share one packed forward pass; the response is
        identical to the direct path's (the batched engine matches the serial
        one to round-off, and cache keys are unchanged).
        """
        start = time.perf_counter()
        with self.obs.tracer.span("estimate", kernel=request.kernel):
            batcher = self._batcher
            if batcher is not None:
                response = batcher.submit(request)
            else:
                response = self.estimate_many([request])[0]
        self.obs.request_seconds.labels(endpoint="estimate").observe(
            time.perf_counter() - start
        )
        return response

    def estimate_many(self, requests: list[EstimateRequest]) -> list[EstimateResponse]:
        """Estimate a batch of design points with one vectorised forward pass.

        Cached designs are answered from memory; the remaining misses are
        featurised once per kernel and predicted in one packed batch per
        ``batch_size`` chunk.
        """
        start = time.perf_counter()
        if not requests:
            return []
        with self.obs.tracer.span("estimate_many", designs=len(requests)) as span:
            # One immutable plan snapshot per batch: a promote/rollback that
            # lands while this batch is in flight changes the *next* batch,
            # never mixes artifacts within this one.
            plan = self.resolver.snapshot() if self.resolver is not None else None
            samples, feature_hits = self._resolve_samples(requests)
            predictions, prediction_hits, served = self._predict_samples(
                samples, plan=plan
            )
            if self.cache.persistent is not None:
                # One amortised index write per request batch (the disk tier
                # also self-syncs every `sync_every` mutations within huge
                # batches).
                self.cache.persistent.sync()
            span.set_attribute("feature_hits", int(sum(feature_hits)))
            span.set_attribute("prediction_hits", int(sum(prediction_hits)))

        elapsed = time.perf_counter() - start
        elapsed_ms = elapsed * 1e3
        self.metrics.record(
            requests=1, designs=len(requests), total_seconds=elapsed
        )
        self.obs.request_seconds.labels(endpoint="estimate_many").observe(elapsed)
        log_event(
            self.obs.logger,
            "request",
            endpoint="estimate_many",
            designs=len(requests),
            feature_hits=int(sum(feature_hits)),
            prediction_hits=int(sum(prediction_hits)),
            latency_ms=round(elapsed_ms, 3),
        )
        return [
            EstimateResponse(
                kernel=sample.kernel,
                directives=sample.directives,
                power=float(prediction),
                target=self.target,
                cached_features=bool(feature_hit),
                cached_prediction=bool(prediction_hit),
                latency_ms=elapsed_ms,
                model_fingerprint=(
                    resolved.fingerprint
                    if resolved is not None
                    else self.model_fingerprint
                ),
                served_by=(resolved.served_by() if resolved is not None else None),
            )
            for sample, prediction, feature_hit, prediction_hit, resolved in zip(
                samples, predictions, feature_hits, prediction_hits, served
            )
        ]

    def explore(
        self,
        kernel: str,
        budget: float | None = None,
        *,
        dse_config: DSEConfig | None = None,
        samples: list[GraphSample] | None = None,
    ) -> ExploreReport:
        """Pareto-explore a kernel's design space using the cached predictor.

        Equivalent to driving :class:`~repro.dse.explorer.ParetoExplorer` by
        hand with ``model.predict`` — same sampling trajectory, same ADRS —
        but every prediction goes through the batched engine and lands in the
        cache, so re-exploring (or estimating designs the exploration already
        touched) is free.

        ``samples`` can pass a pre-featurised design space; otherwise the
        service generates and featurises the kernel's design space itself.
        Pass either ``budget`` (total sampling budget, default 0.4) or a full
        ``dse_config`` — not both.
        """
        with self.obs.tracer.span("explore", kernel=kernel):
            return self._explore_inner(
                kernel, budget, dse_config=dse_config, samples=samples
            )

    def _explore_inner(
        self,
        kernel: str,
        budget: float | None = None,
        *,
        dse_config: DSEConfig | None = None,
        samples: list[GraphSample] | None = None,
    ) -> ExploreReport:
        session = self.open_exploration(
            kernel, budget, dse_config=dse_config, samples=samples
        )
        while not session.done:
            session.step()
        return session.report()

    def open_exploration(
        self,
        kernel: str,
        budget: float | None = None,
        *,
        dse_config: DSEConfig | None = None,
        samples: list[GraphSample] | None = None,
        state: ExplorationState | None = None,
        plan_seq: int | None = None,
    ) -> ExplorationSession:
        """Open an incremental exploration over ``kernel``'s design space.

        The session is the unit the async job service schedules: one
        :meth:`ExplorationSession.step` per slice, checkpointing
        ``session.state`` between slices.  Passing a checkpointed ``state``
        resumes an interrupted exploration from exactly where it stopped —
        featurisation is re-resolved (warm from the caches), the random
        stream and the sampled set continue from the checkpoint.

        The session pins a deployment plan for its whole life: the plan live
        at open time, or — for a job resumed from a checkpoint — the
        ``plan_seq`` recorded when the job first started, reloaded from the
        store's immutable per-seq document so the resumed trajectory predicts
        through exactly the artifacts the original did.
        """
        if budget is not None and dse_config is not None:
            raise ValueError(
                "pass either budget or dse_config, not both "
                "(dse_config carries its own total_budget)"
            )
        plan = None
        if self.resolver is not None:
            plan = (
                self.resolver.plan_at(plan_seq)
                if plan_seq is not None
                else self.resolver.snapshot()
            )
        config = dse_config or DSEConfig(total_budget=budget if budget is not None else 0.4)
        if samples is None:
            spec = polybench_kernel(kernel, self.generator.config.kernel_size)
            design_space = self.generator.design_space_for(spec)
            requests = [
                EstimateRequest(kernel=kernel, directives=point)
                for point in design_space
            ]
            samples, _ = self._resolve_samples(requests)

        candidates = [
            DesignCandidate(
                index=index,
                latency=float(sample.latency_cycles),
                true_power=sample.target(self.target),
                config_vector=np.asarray(
                    sample.extras.get("config_vector", [float(index)]), dtype=float
                ),
                payload=sample,
            )
            for index, sample in enumerate(samples)
        ]
        return ExplorationSession(
            self, kernel, config, candidates, state=state, plan=plan
        )

    # ------------------------------------------------------------- deployments

    def deployment_view(self) -> dict:
        """The live deployment state (``GET /v1/deployments``)."""
        return self._require_resolver().describe()

    def put_deployment(self, document: dict) -> dict:
        """Validate and publish a plan document; returns the new state.

        Every artifact reference is checked against the registry before
        anything is written (:class:`~repro.deploy.plan.UnknownArtifactError`
        on a miss — the HTTP layer maps it to ``400 unknown_artifact``), and
        the publish is atomic: replicas sharing the registry directory pick
        the new plan up on their next request batch.
        """
        resolver = self._require_resolver()
        plan = DeploymentPlan.from_json(document, seq=0)
        published = resolver.publish(plan)
        self._deployment_event("deployment_published", published)
        return resolver.describe()

    def promote_deployment(self, pattern: str | None = None) -> dict:
        """Challenger becomes champion for matching rules (all by default)."""
        resolver = self._require_resolver()
        published = resolver.promote(pattern)
        self._deployment_event("deployment_promoted", published)
        return resolver.describe()

    def rollback_deployment(self, pattern: str | None = None) -> dict:
        """Drop the challenger for matching rules (all by default)."""
        resolver = self._require_resolver()
        published = resolver.rollback(pattern)
        self._deployment_event("deployment_rolled_back", published)
        return resolver.describe()

    def current_plan_seq(self) -> int | None:
        """Seq of the live plan, or ``None`` (no plan / no resolver)."""
        return self.resolver.current_seq() if self.resolver is not None else None

    def _require_resolver(self) -> ModelResolver:
        if self.resolver is None:
            raise RuntimeError(
                "deployments are not enabled: the service was constructed "
                "without a model registry"
            )
        return self.resolver

    def _deployment_event(self, kind: str, plan: DeploymentPlan) -> None:
        self.obs.pool_event(kind, pool="deploy", seq=plan.seq, rules=len(plan.rules))
        log_event(self.obs.logger, kind, seq=plan.seq, rules=len(plan.rules))

    # --------------------------------------------------------------- internals

    def _resolve_samples(
        self, requests: list[EstimateRequest]
    ) -> tuple[list[GraphSample], list[bool]]:
        """Feature-cache lookups plus grouped featurisation of the misses.

        Client-supplied samples are used as-is but never written into the
        featurisation cache: its keys address the *service's own* deterministic
        featurisation of ``(kernel, directives)``, and a foreign graph under
        that address would poison later directives-based requests.
        """
        samples: list[GraphSample | None] = [None] * len(requests)
        hits: list[bool] = [False] * len(requests)
        misses_by_kernel: dict[str, list[int]] = {}
        with self.obs.tracer.span("cache.samples", designs=len(requests)) as span:
            for index, request in enumerate(requests):
                if request.sample is not None:
                    samples[index] = request.sample
                    continue
                cached = self.cache.get_sample(request.kernel, request.directives_key)
                if cached is not None:
                    samples[index] = cached
                    hits[index] = True
                else:
                    misses_by_kernel.setdefault(request.kernel, []).append(index)
            span.set_attribute("hits", int(sum(hits)))

        for kernel, indices in misses_by_kernel.items():
            directives_list = [requests[i].directives for i in indices]
            featurise_start = time.perf_counter()
            with self.obs.tracer.span(
                "featurise", kernel=kernel, designs=len(indices)
            ) as span:
                featurised, pooled = self._featurise(kernel, directives_list)
                span.set_attribute("pooled", pooled)
                if not pooled:
                    # Pooled shards graft their own worker spans (with pids);
                    # the serial path names its worker — this process — here.
                    span.set_attribute("worker_pid", os.getpid())
            elapsed = time.perf_counter() - featurise_start
            self.obs.observe_stage("featurise", elapsed)
            self.metrics.record(
                featurise_seconds=elapsed,
                featurised=len(indices),
                pooled_featurised=len(indices) if pooled else 0,
            )
            # What a future cache hit on this design saves: its share of the
            # batch's featurisation wall-clock.  This is the value the
            # persistent tier's cost-aware eviction ranks entries by.
            cost_per_design = elapsed / len(indices)
            for index, sample in zip(indices, featurised):
                samples[index] = sample
                self.cache.put_sample(sample, cost_seconds=cost_per_design)
        return list(samples), hits

    def _coalesced_flush(self, requests: list[EstimateRequest]) -> list:
        """Serve one coalesced batch; a bad request fails only its own caller.

        The fast path is the ordinary batched ``estimate_many``.  If it raises
        (e.g. one member names an unknown kernel), the batch degrades to
        per-request calls so every other caller still gets the response the
        direct path would have given them, and only the offending caller
        re-raises.
        """
        flush_start = time.perf_counter()
        self.obs.coalesced_batch_size.observe(len(requests))
        try:
            try:
                return self.estimate_many(requests)
            except Exception:
                results: list = []
                for request in requests:
                    try:
                        results.append(self.estimate_many([request])[0])
                    except Exception as error:  # noqa: PERF203 - per-item isolation
                        results.append(ItemError(error))
                return results
        finally:
            self.obs.observe_stage("batch_flush", time.perf_counter() - flush_start)

    def _featurise(
        self, kernel: str, directives_list: list[DesignDirectives]
    ) -> tuple[list[GraphSample], bool]:
        """Featurise through the supervised worker pool when it pays off.

        Both paths produce bitwise-identical samples (featurisation is pure
        per design point and the pool's merge is deterministic); the pool is
        only engaged for batches large enough to amortise process IPC.  A
        crashed worker is the supervisor's problem (restart within budget,
        retry the batch); only a *retired* pool — or a shutdown race — lands
        here and degrades to the serial path.  A service whose generator
        carries a custom operator library featurises serially: workers
        rebuild their generator from the dataset config alone.
        """
        supervisor = self._featurisation_supervisor(len(directives_list))
        if supervisor is not None:
            dispatch_start = time.perf_counter()
            try:
                samples = supervisor.run(
                    lambda pool: pool.featurise(kernel, directives_list),
                    cost=len(directives_list),
                )
                self.obs.observe_stage(
                    "pool_dispatch", time.perf_counter() - dispatch_start
                )
                self._note_pool_success(supervisor)
                return samples, True
            except PoolRetiredError:
                # Restart budget exhausted (faults already counted via the
                # supervisor's callbacks): permanently serial from here on.
                pass
            except (RuntimeError, ValueError):
                # The supervisor/pool was closed between handing out the
                # handle and submitting the batch (service shutdown racing a
                # request), or the pool failed without a worker crash; both
                # paths produce identical samples, so run serial.  The serial
                # outcome is what tells request faults from pool faults: if
                # it raises the *same* data error, the pool was fine (no
                # strike, the caller's problem); if it succeeds, the pool
                # really failed — count it, and a streak retires the pool.
                samples = self.generator.featurise(kernel, directives_list)
                self._note_pool_degradation(supervisor)
                return samples, False
        return self.generator.featurise(kernel, directives_list), False

    def _featurisation_supervisor(self, num_designs: int) -> SupervisedPool | None:
        if not self.runtime.parallel_featurisation:
            return None
        if self.generator.library is not DEFAULT_LIBRARY:
            return None
        with self._pool_lock:
            if self._closed:
                return None
            # Locked check-then-act: two concurrent cold calls must not each
            # build a supervisor (its own locks guard the actual processes).
            if self._feat_supervisor is None:
                low, high, start = self.runtime.featurisation_worker_bounds()
                self._feat_supervisor = SupervisedPool(
                    lambda workers: WorkerPool(
                        config=self.generator.config,
                        num_workers=workers,
                        start_method=self.runtime.start_method,
                        min_designs_per_worker=self.runtime.min_designs_per_worker,
                        stats=self._pool_stats,
                        tracer=self.obs.tracer,
                    ),
                    min_workers=low,
                    max_workers=high,
                    start_workers=start,
                    max_restarts=self.runtime.pool_max_restarts,
                    restart_budget_decay_s=self.runtime.pool_restart_budget_decay_s,
                    backoff_base_s=self.runtime.pool_restart_backoff_s,
                    scale_up_queue_per_worker=self.runtime.autoscale_up_queue_per_worker,
                    scale_down_queue_per_worker=self.runtime.autoscale_down_queue_per_worker,
                    scale_down_patience=self.runtime.autoscale_down_patience,
                    min_designs_per_worker=self.runtime.min_designs_per_worker,
                    name="featurisation",
                    on_fault=lambda fault: self.metrics.record(pooled_errors=1),
                    on_restart=lambda: self.metrics.record(pool_restarts=1),
                    observer=self.obs,
                )
            supervisor = self._feat_supervisor
        return supervisor if supervisor.should_parallelise(num_designs) else None

    def _predict_batch(
        self, samples: list[GraphSample], resolved: ResolvedModel | None = None
    ) -> np.ndarray:
        """One batched forward over ``samples`` — pooled when it pays off.

        Large ensembles shard the packed forward across the
        :class:`~repro.runtime.pool.ForwardPool` (read-only shared-memory
        weights, deterministic contiguous-member merge); everything else runs
        in-process.  Both paths produce bitwise-identical predictions, and
        both route their kernels through the service's pinned backend (the
        pool pins the same backend in its workers).

        ``resolved`` names the model a deployment plan routed this group to.
        The :class:`~repro.runtime.pool.ForwardPool`'s shared-memory weights
        are published once for the *default* model, so only the default rides
        the pool; plan-resolved challengers/champions run the in-process
        serial path under the model lock (in-process forwards flip the
        process-wide train/eval and autograd state, so all models take turns
        on one lock).

        A crashed forward worker is restarted by the supervisor within
        ``RuntimeConfig.pool_max_restarts`` and the batch retried on the
        fresh pool — faults are counted in ``pooled_errors`` without
        permanently disabling pooling.  Only a retired pool (budget
        exhausted) or a shutdown race degrades to the serial path, which
        produces identical predictions.
        """
        with self.obs.tracer.span("forward", designs=len(samples)) as span:
            if resolved is not None and resolved.model is not self.model:
                span.set_attribute("pooled", False)
                span.set_attribute("worker_pid", os.getpid())
                span.set_attribute("artifact", resolved.label)
                with self._model_lock, use_backend(self.backend):
                    return resolved.model.predict_batch(
                        samples, batch_size=self.batch_size
                    )
            return self._predict_batch_inner(samples, span)

    def _predict_batch_inner(self, samples: list[GraphSample], span) -> np.ndarray:
        supervisor = self._forward_supervisor_handle(len(samples))
        if supervisor is not None:
            span.set_attribute("pooled", True)
            dispatch_start = time.perf_counter()
            try:
                predictions = supervisor.run(
                    lambda pool: pool.predict_batch(samples, batch_size=self.batch_size),
                    cost=len(samples),
                )
                self.obs.observe_stage(
                    "pool_dispatch", time.perf_counter() - dispatch_start
                )
                self.metrics.record(pooled_predicted=len(samples))
                self._note_pool_success(supervisor)
                return predictions
            except PoolRetiredError:
                # Budget exhausted; faults already counted via the
                # supervisor's callbacks.  Serial from here on.
                pass
            except (RuntimeError, ValueError):
                # Shutdown race (closed supervisor/pool/executor) or a
                # non-crash pool error: answer on the identical serial path
                # and make it visible.  A strike is recorded only when the
                # serial retry succeeds — a batch that fails serially too was
                # a bad request, not a broken pool.  No crash-restart budget
                # is consumed, but a *streak* of strikes retires the pool: a
                # deterministically broken pool must not re-pay its doomed
                # setup on every subsequent batch.
                with self._model_lock, use_backend(self.backend):
                    predictions = self.model.predict_batch(
                        samples, batch_size=self.batch_size
                    )
                self._note_pool_degradation(supervisor)
                span.set_attribute("pooled", False)
                return predictions
        span.set_attribute("pooled", False)
        span.set_attribute("worker_pid", os.getpid())
        with self._model_lock, use_backend(self.backend):
            return self.model.predict_batch(samples, batch_size=self.batch_size)

    def _note_pool_degradation(self, supervisor: SupervisedPool) -> None:
        """Count one non-crash pooled failure; retire the pool past the budget.

        Worker crashes consume the supervisor's restart budget; everything
        else lands here — but only after the serial retry *succeeded* (the
        callers guarantee that), which is what separates a broken pool from
        a broken request: a data error raises identically on both paths and
        must never cost the pool anything.  A shutdown race is not a pool
        fault either (the supervisor is already closed), but
        ``pool_max_restarts`` *consecutive* genuine failures mean the pool
        is deterministically broken — retire it so later batches skip the
        doomed round-trip, exactly as a crash-retired pool would.
        """
        self.metrics.record(pooled_errors=1)
        if supervisor.closed:
            return
        with self._pool_lock:
            strikes = self._pool_strikes.get(supervisor.name, 0) + 1
            self._pool_strikes[supervisor.name] = strikes
        self.obs.pool_event("degrade", pool=supervisor.name, strikes=strikes)
        if strikes > self.runtime.pool_max_restarts:
            supervisor.retire(
                f"{strikes} consecutive non-crash pool failures "
                "(see pooled_errors)"
            )

    def _note_pool_success(self, supervisor: SupervisedPool) -> None:
        if self._pool_strikes.get(supervisor.name):
            with self._pool_lock:
                self._pool_strikes[supervisor.name] = 0

    def _forward_supervisor_handle(self, num_designs: int) -> SupervisedPool | None:
        """The forward pool's supervisor, or ``None`` when pooling can't pay.

        Viability is per shardable axis: the member axis needs an ensemble of
        at least ``forward_min_members``; the graph axis needs a batch of at
        least ``forward_min_graphs`` designs (and works for single-model
        flows).  ``forward_shard_axis`` pins one axis — ``auto`` engages the
        pool when *either* axis is viable and lets the pool pick per chunk.
        """
        if not self.runtime.parallel_forward:
            return None
        ensemble = self.model.ensemble
        members = len(ensemble.members) if ensemble is not None else 1
        members_ok = members >= self.runtime.forward_min_members
        graphs_ok = num_designs >= self.runtime.forward_min_graphs
        axis = self.runtime.forward_shard_axis
        if axis == "members" and not members_ok:
            return None
        if axis == "graphs" and not graphs_ok:
            return None
        if axis == "auto" and not (members_ok or graphs_ok):
            return None
        with self._pool_lock:
            if self._closed:
                return None
            # Locked check-then-act, same contract as the featurisation pool.
            if self._forward_supervisor is None:
                workers = self.runtime.forward_workers
                self._forward_supervisor = SupervisedPool(
                    lambda num_workers: ForwardPool(
                        self.model,
                        num_workers=num_workers,
                        start_method=self.runtime.start_method,
                        backend=self.backend.name,
                        stats=self._forward_pool_stats,
                        tracer=self.obs.tracer,
                        shard_axis=self.runtime.forward_shard_axis,
                        min_members=self.runtime.forward_min_members,
                        min_graphs=self.runtime.forward_min_graphs,
                    ),
                    # Fixed size: the shard axes are data axes (members /
                    # graphs of one batch), so queue depth says nothing about
                    # useful parallelism — supervision without autoscaling.
                    min_workers=workers,
                    max_workers=workers,
                    max_restarts=self.runtime.pool_max_restarts,
                    restart_budget_decay_s=self.runtime.pool_restart_budget_decay_s,
                    backoff_base_s=self.runtime.pool_restart_backoff_s,
                    name="forward",
                    on_fault=lambda fault: self.metrics.record(pooled_errors=1),
                    on_restart=lambda: self.metrics.record(pool_restarts=1),
                    observer=self.obs,
                )
            return self._forward_supervisor

    def _predict_samples(
        self, samples: list[GraphSample], plan: DeploymentPlan | None = None
    ) -> tuple[np.ndarray, list[bool], list[ResolvedModel | None]]:
        """Cached, batched prediction of ``samples`` under one plan snapshot.

        Returns ``(predictions, cache_hits, served)`` where ``served[i]`` is
        the :class:`~repro.deploy.resolver.ResolvedModel` a plan routed
        design ``i`` to, or ``None`` for the ambient default (no plan, or no
        matching rule — the pre-deployment wire format).
        """
        if plan is None:
            predictions, hits = self._predict_with(self._default_resolved, samples)
            return predictions, hits, [None] * len(samples)
        return self._predict_samples_planned(samples, plan)

    def _predict_samples_planned(
        self, samples: list[GraphSample], plan: DeploymentPlan
    ) -> tuple[np.ndarray, list[bool], list[ResolvedModel | None]]:
        """The planned path: per-design routing, grouped per serving artifact.

        Designs are assigned to their serving arm by the deterministic
        challenger split, grouped by resolved model (group order is first
        occurrence, so results are independent of grouping — every design's
        prediction is a pure function of its own sample and its model), and
        predicted through the same cache/batch machinery as the default path
        under each model's own fingerprint.  Designs selected onto a
        challenger slice are then predicted by the *other* arm too: those
        predictions land in the cache and the champion/challenger divergence
        is exported, but only the serving arm's value is returned.
        """
        resolver = self.resolver
        assignments = [
            resolver.resolve(plan, sample.kernel, sample.directives)
            for sample in samples
        ]
        predictions = np.zeros(len(samples))
        hits: list[bool] = [False] * len(samples)
        served: list[ResolvedModel | None] = [None] * len(samples)
        groups: dict[str, tuple[ResolvedModel, list[int]]] = {}
        for index, (serve, _, rule) in enumerate(assignments):
            if rule is not None:
                served[index] = serve
            _, indices = groups.setdefault(serve.fingerprint, (serve, []))
            indices.append(index)
        for serve, indices in groups.values():
            group_predictions, group_hits = self._predict_with(
                serve, [samples[i] for i in indices]
            )
            self._account_artifact(serve, len(indices))
            for position, index in enumerate(indices):
                predictions[index] = group_predictions[position]
                hits[index] = group_hits[position]

        recorded: dict[str, tuple[ResolvedModel, list[int]]] = {}
        for index, (_, record, _) in enumerate(assignments):
            if record is not None:
                _, indices = recorded.setdefault(record.fingerprint, (record, []))
                indices.append(index)
        for record, indices in recorded.values():
            record_predictions, _ = self._predict_with(
                record, [samples[i] for i in indices]
            )
            self._account_artifact(record, len(indices))
            for position, index in enumerate(indices):
                self._record_divergence(
                    assignments[index][2],
                    float(predictions[index]),
                    float(record_predictions[position]),
                )
        return predictions, hits, served

    def _account_artifact(self, resolved: ResolvedModel, designs: int) -> None:
        self.obs.deploy_requests.labels(
            artifact=resolved.label, role=resolved.role
        ).inc(designs)
        self.obs.deploy_artifact_designs.labels(artifact=resolved.label).inc(designs)

    def _record_divergence(
        self, rule: str | None, served_value: float, recorded_value: float
    ) -> None:
        """Export one champion/challenger comparison as drift metrics."""
        diff = abs(served_value - recorded_value)
        label = rule if rule is not None else "*"
        self.obs.deploy_divergence_abs.labels(rule=label).observe(diff)
        if diff != 0.0:
            self.obs.deploy_divergence.labels(rule=label).inc()

    def _predict_with(
        self, resolved: ResolvedModel, samples: list[GraphSample]
    ) -> tuple[np.ndarray, list[bool]]:
        """Prediction-cache lookups plus one batched pass over the misses.

        Cache keys are parameterised by the resolved model's fingerprint, so
        champion and challenger predictions of the same design coexist in the
        cache and a promote flips which entries the serving path reads —
        nothing is invalidated.
        """
        predictions = np.zeros(len(samples))
        hits: list[bool] = [False] * len(samples)
        miss_indices: list[int] = []
        with self.obs.tracer.span("cache.predictions", designs=len(samples)) as span:
            keys = [sample_fingerprint(sample) for sample in samples]
            for index, key in enumerate(keys):
                cached = self.cache.get_prediction(key, resolved.fingerprint)
                if cached is not None:
                    predictions[index] = cached
                    hits[index] = True
                else:
                    miss_indices.append(index)
            span.set_attribute("hits", int(sum(hits)))

        if miss_indices:
            predict_start = time.perf_counter()
            fresh = self._predict_batch(
                [samples[i] for i in miss_indices], resolved=resolved
            )
            elapsed = time.perf_counter() - predict_start
            self.obs.observe_stage("predict", elapsed)
            self.metrics.record(
                predict_seconds=elapsed,
                predicted=len(miss_indices),
                # Number of packed forward batches actually run.
                batches=-(-len(miss_indices) // self.batch_size),
            )
            cost_per_design = elapsed / len(miss_indices)
            for position, index in enumerate(miss_indices):
                predictions[index] = fresh[position]
                self.cache.put_prediction(
                    keys[index],
                    resolved.fingerprint,
                    float(fresh[position]),
                    cost_seconds=cost_per_design,
                )
        return predictions, hits
