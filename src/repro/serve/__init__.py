"""Serving subsystem: durable model artifacts, batched inference, caching.

This package turns the trained PowerGear estimator into a long-lived service:

* :mod:`repro.serve.registry` — versioned on-disk model artifacts that load
  back bit-exactly,
* :mod:`repro.serve.batching` — block-diagonal graph packing so a request
  batch runs one vectorised forward pass per ensemble member,
* :mod:`repro.serve.cache` — content-addressed memoisation of featurisation
  and predictions across requests,
* :mod:`repro.serve.service` — the :class:`PowerEstimationService` façade with
  ``estimate`` / ``estimate_many`` / ``explore`` endpoints and latency /
  throughput instrumentation.
"""

from repro.serve.batching import (
    PackedBatch,
    iter_chunks,
    pack_graphs,
    pack_samples,
    shard_evenly,
)
from repro.serve.cache import (
    CacheStats,
    InferenceCache,
    LRUStore,
    content_key,
    sample_fingerprint,
)
from repro.serve.registry import (
    ModelArtifact,
    ModelRegistry,
    REGISTRY_FORMAT_VERSION,
    config_from_dict,
    config_to_dict,
    load_artifact_dir,
)
from repro.serve.service import (
    EstimateRequest,
    EstimateResponse,
    ExploreReport,
    FrontierDesign,
    PowerEstimationService,
    ServiceMetrics,
)

__all__ = [
    "PackedBatch",
    "pack_graphs",
    "pack_samples",
    "iter_chunks",
    "shard_evenly",
    "CacheStats",
    "InferenceCache",
    "LRUStore",
    "content_key",
    "sample_fingerprint",
    "ModelArtifact",
    "ModelRegistry",
    "REGISTRY_FORMAT_VERSION",
    "config_to_dict",
    "config_from_dict",
    "load_artifact_dir",
    "EstimateRequest",
    "EstimateResponse",
    "ExploreReport",
    "FrontierDesign",
    "PowerEstimationService",
    "ServiceMetrics",
]
