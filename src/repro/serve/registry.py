"""Versioned on-disk model registry for fitted :class:`PowerGear` estimators.

An *artifact* is one directory::

    <root>/<name>/v<version>/
        manifest.json   # config, dims, member descriptors, fingerprint
        weights.npz     # every parameter array + feature-scaler statistics

``save`` serialises a fitted estimator — scaler statistics, every ensemble
member's weights, and the full configuration — and ``load`` reconstructs it
*bit-exactly*: the manifest stores the weight fingerprint at save time and the
loader verifies the reconstructed model reproduces it, so a loaded model's
predictions are guaranteed equal to the in-memory original's.

The registry is append-only and versioned: saving the same name again creates
``v2``, ``v3``, … so serving deployments can roll forward and back.
"""

from __future__ import annotations

import json
import re
import shutil
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro import __version__ as LIBRARY_VERSION
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.ensemble import EnsembleMember, EnsembleRegressor
from repro.graph.dataset import FeatureScaler
from repro.graph.features import FEATURE_VERSION

#: Bumped when the artifact layout changes incompatibly.
REGISTRY_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
WEIGHTS_NAME = "weights.npz"

_SCALER_BLOCKS = (
    "node_mean",
    "node_std",
    "edge_mean",
    "edge_std",
    "meta_mean",
    "meta_std",
)


@dataclass(frozen=True)
class ModelArtifact:
    """Handle to one saved model version."""

    name: str
    version: int
    path: Path
    manifest: dict

    @property
    def fingerprint(self) -> str:
        return self.manifest["fingerprint"]


# --------------------------------------------------------------------- config i/o

#: Aliases kept for the public serve API; the canonical implementation lives
#: on :class:`PowerGearConfig` so that fingerprints and manifests agree.
config_to_dict = PowerGearConfig.to_dict
config_from_dict = PowerGearConfig.from_dict


# ------------------------------------------------------------------------ registry


class ModelRegistry:
    """Save / load fitted :class:`PowerGear` estimators as versioned artifacts."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------- listing

    def list_models(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and self.versions(entry.name)
        )

    def versions(self, name: str) -> list[int]:
        """Versions with a complete (manifested) artifact, ascending."""
        return self._scan_versions(name, complete_only=True)

    def _scan_versions(self, name: str, complete_only: bool) -> list[int]:
        model_dir = self.root / self._check_name(name)
        if not model_dir.is_dir():
            return []
        found = []
        for entry in model_dir.iterdir():
            if not entry.is_dir() or not entry.name.startswith("v"):
                continue
            if complete_only and not (entry / MANIFEST_NAME).is_file():
                continue
            try:
                found.append(int(entry.name[1:]))
            except ValueError:
                continue
        return sorted(found)

    def latest_version(self, name: str) -> int:
        versions = self.versions(name)
        if not versions:
            raise KeyError(f"registry has no model named {name!r}")
        return versions[-1]

    # --------------------------------------------------------------------- save

    def save(
        self, model: PowerGear, name: str, metadata: dict | None = None
    ) -> ModelArtifact:
        """Persist a fitted estimator and return the new artifact handle."""
        if model.ensemble is None and model.model is None:
            raise ValueError("cannot save an unfitted PowerGear")
        if model._dims is None:
            raise ValueError("fitted model is missing its feature dimensions")
        name = self._check_name(name)
        # Count incomplete (manifest-less) version dirs too: a crashed save must
        # not block the next one from picking a fresh version number.
        occupied = self._scan_versions(name, complete_only=False)
        version = occupied[-1] + 1 if occupied else 1
        artifact_dir = self.root / name / f"v{version}"
        # Stage into a temp sibling and rename at the end, so a failure mid-save
        # never leaves a half-written artifact under the final path.
        staging_dir = self.root / name / f".staging-v{version}"
        if staging_dir.exists():
            shutil.rmtree(staging_dir)
        staging_dir.mkdir(parents=True)

        weights: dict[str, np.ndarray] = {}
        members_manifest: list[dict] | None = None
        if model.ensemble is not None:
            members_manifest = []
            for index, member in enumerate(model.ensemble.members):
                members_manifest.append(
                    {
                        "fold": member.fold,
                        "seed": member.seed,
                        "model_seed": member.model.config.seed,
                        "validation_error": float(member.validation_error),
                        "num_parameters": member.model.num_parameters(),
                    }
                )
                for key, value in member.model.state_dict().items():
                    weights[f"m{index}_{key}"] = value
        else:
            for key, value in model.model.state_dict().items():
                weights[f"m0_{key}"] = value
        if model.scaler is not None:
            for block in _SCALER_BLOCKS:
                value = getattr(model.scaler, block)
                if value is not None:
                    weights[f"scaler_{block}"] = np.asarray(value, dtype=np.float64)

        manifest = {
            "format_version": REGISTRY_FORMAT_VERSION,
            "library_version": LIBRARY_VERSION,
            "feature_version": FEATURE_VERSION,
            "name": name,
            "version": version,
            "target": model.config.target,
            "config": config_to_dict(model.config),
            "dims": list(model._dims),
            "members": members_manifest,
            "fingerprint": model.fingerprint(),
            "metadata": dict(metadata or {}),
            "weights_file": WEIGHTS_NAME,
        }
        try:
            np.savez_compressed(staging_dir / WEIGHTS_NAME, **weights)
            with open(staging_dir / MANIFEST_NAME, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
            staging_dir.rename(artifact_dir)
        except BaseException:
            shutil.rmtree(staging_dir, ignore_errors=True)
            raise
        return ModelArtifact(name=name, version=version, path=artifact_dir, manifest=manifest)

    # --------------------------------------------------------------------- load

    def load_artifact(self, name: str, version: int | None = None) -> ModelArtifact:
        name = self._check_name(name)
        version = version if version is not None else self.latest_version(name)
        artifact_dir = self.root / name / f"v{version}"
        manifest_path = artifact_dir / MANIFEST_NAME
        if not manifest_path.is_file():
            raise KeyError(f"registry has no artifact {name!r} v{version}")
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        return ModelArtifact(name=name, version=version, path=artifact_dir, manifest=manifest)

    def load(self, name: str, version: int | None = None) -> PowerGear:
        """Reconstruct a saved estimator bit-exactly."""
        return load_artifact_dir(self.load_artifact(name, version).path)

    # ---------------------------------------------------------------- internals

    @staticmethod
    def _check_name(name: str) -> str:
        if not re.fullmatch(r"[A-Za-z0-9][A-Za-z0-9._-]*", name):
            raise ValueError(
                f"invalid model name {name!r} (letters, digits, '.', '_', '-'; "
                "must start with a letter or digit)"
            )
        return name


def load_artifact_dir(path: str | Path) -> PowerGear:
    """Load an artifact directory into a fitted :class:`PowerGear`.

    This is the fresh-process entry point: it needs nothing but the artifact
    path (the manifest and weights fully describe the estimator).
    """
    path = Path(path)
    with open(path / MANIFEST_NAME, encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest["format_version"] > REGISTRY_FORMAT_VERSION:
        raise ValueError(
            f"artifact format v{manifest['format_version']} is newer than this "
            f"library understands (v{REGISTRY_FORMAT_VERSION})"
        )
    if manifest["feature_version"] != FEATURE_VERSION:
        raise ValueError(
            f"artifact was trained on feature version {manifest['feature_version']} "
            f"but this library featurises at version {FEATURE_VERSION}"
        )
    config = config_from_dict(manifest["config"])
    model = PowerGear(config)
    node_dim, edge_dim, meta_dim = manifest["dims"]
    model._dims = (int(node_dim), int(edge_dim), int(meta_dim))

    with np.load(path / manifest["weights_file"], allow_pickle=False) as data:
        if config.scale_features:
            scaler = FeatureScaler()
            for block in _SCALER_BLOCKS:
                key = f"scaler_{block}"
                if key in data:
                    setattr(scaler, block, np.array(data[key]))
            model.scaler = scaler

        def member_state(index: int) -> dict[str, np.ndarray]:
            prefix = f"m{index}_"
            return {
                key[len(prefix):]: np.array(data[key])
                for key in data.files
                if key.startswith(prefix)
            }

        if manifest["members"] is not None:
            regressor = EnsembleRegressor(
                model_factory=model._model_factory,
                model_config=config.gnn,
                training_config=config.training,
                ensemble_config=config.ensemble,
            )
            for index, record in enumerate(manifest["members"]):
                member_config = replace(config.gnn, seed=record["model_seed"])
                network = model._model_factory(member_config)
                network.load_state_dict(member_state(index))
                regressor.members.append(
                    EnsembleMember(
                        model=network,
                        fold=record["fold"],
                        seed=record["seed"],
                        validation_error=record["validation_error"],
                    )
                )
            model.ensemble = regressor
            model.model = None
        else:
            network = model._model_factory(config.gnn)
            network.load_state_dict(member_state(0))
            model.model = network
            model.ensemble = None

    fingerprint = model.fingerprint()
    if fingerprint != manifest["fingerprint"]:
        raise ValueError(
            "artifact integrity check failed: reconstructed weights do not match "
            "the fingerprint recorded at save time"
        )
    return model
