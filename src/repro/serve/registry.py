"""Versioned on-disk model registry for fitted :class:`PowerGear` estimators.

An *artifact* is one directory::

    <root>/<name>/v<version>/
        manifest.json   # config, dims, member descriptors, fingerprint
        weights.npz     # every parameter array + feature-scaler statistics

Large registries can opt into a **sharded layout** (two-level fan-out by a
1-byte blake2b hash of the model name) so the root never holds thousands of
sibling directories::

    <root>/_shards/<2-hex>/<name>/v<version>/...

Sharding is write-side only and migration is transparent: reads resolve a
model's directory flat-first then sharded (``_model_dir``), new versions of
an existing flat model stay flat (one model's versions never split across
layouts), and listing/indexing merge both layouts.  Constructing with
``sharded=True`` turns fan-out on for new models; the default auto-detects —
a registry that already has a ``_shards/`` directory keeps using it.

``save`` serialises a fitted estimator — scaler statistics, every ensemble
member's weights, and the full configuration — and ``load`` reconstructs it
*bit-exactly*: the manifest stores the weight fingerprint at save time and the
loader verifies the reconstructed model reproduces it, so a loaded model's
predictions are guaranteed equal to the in-memory original's.

The registry is append-only and versioned: saving the same name again creates
``v2``, ``v3``, … so serving deployments can roll forward and back.

A root-level ``manifest.json`` indexes every ``name -> versions`` so
``list_models`` / ``versions`` / ``latest_version`` answer from one small file
instead of walking the artifact tree (which grows linearly with model count).
Each index entry records the model directory's mtime at record time; on read,
a ``stat`` of the directory plus one per indexed version validates the entry —
an out-of-band change at the model-directory level (a save whose index update
was lost, a removed version, a hand-copied artifact) bumps the mtime, and a
version whose own manifest vanished fails the per-version check; either way
the entry is distrusted, rescanned, and healed.  The scan remains the source
of truth, the index is only a cache.  The name ``manifest.json`` itself is
reserved (it would collide with the index file).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro import __version__ as LIBRARY_VERSION
from repro.flow.powergear import PowerGear, PowerGearConfig
from repro.gnn.ensemble import EnsembleMember, EnsembleRegressor
from repro.graph.dataset import FeatureScaler
from repro.graph.features import FEATURE_VERSION

#: Bumped when the artifact layout changes incompatibly.
REGISTRY_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
WEIGHTS_NAME = "weights.npz"

#: Root subdirectory holding the sharded (fan-out) model layout.  The leading
#: underscore keeps it invisible to name validation, like ``_deployments``.
SHARDS_DIRNAME = "_shards"

_SCALER_BLOCKS = (
    "node_mean",
    "node_std",
    "edge_mean",
    "edge_std",
    "meta_mean",
    "meta_std",
)


@dataclass(frozen=True)
class ModelArtifact:
    """Handle to one saved model version."""

    name: str
    version: int
    path: Path
    manifest: dict

    @property
    def fingerprint(self) -> str:
        return self.manifest["fingerprint"]


# --------------------------------------------------------------------- config i/o

#: Aliases kept for the public serve API; the canonical implementation lives
#: on :class:`PowerGearConfig` so that fingerprints and manifests agree.
config_to_dict = PowerGearConfig.to_dict
config_from_dict = PowerGearConfig.from_dict


# ------------------------------------------------------------------------ registry


class ModelRegistry:
    """Save / load fitted :class:`PowerGear` estimators as versioned artifacts."""

    def __init__(self, root: str | Path, *, sharded: bool | None = None) -> None:
        self.root = Path(root)
        self._sharded_flag = sharded

    @property
    def sharded(self) -> bool:
        """Whether *new* models land in the fan-out layout.

        Explicit ``sharded=...`` at construction wins; otherwise auto-detect:
        a registry that already has a ``_shards/`` directory keeps sharding.
        """
        if self._sharded_flag is not None:
            return self._sharded_flag
        return (self.root / SHARDS_DIRNAME).is_dir()

    def _shard_dir(self, name: str) -> Path:
        shard = hashlib.blake2b(name.encode(), digest_size=1).hexdigest()
        return self.root / SHARDS_DIRNAME / shard / name

    def _model_dir(self, name: str) -> Path:
        """Resolve one model's directory across both layouts.

        Reads prefer wherever the model already lives (flat first, so one
        model's versions never split across layouts); a model that exists
        nowhere resolves to where a save would create it.
        """
        flat = self.root / name
        if flat.is_dir():
            return flat
        sharded = self._shard_dir(name)
        if sharded.is_dir():
            return sharded
        return sharded if self.sharded else flat

    # ------------------------------------------------------------------- listing

    def list_models(self) -> list[str]:
        if not self.root.is_dir():
            return []
        models = self._read_index()
        if models is None:
            models = self.rebuild_index()
        # The index can lack a saved name (lost update between concurrent
        # saves, a swallowed index-write failure), so union it with the cheap
        # directory listing across both layouts: a saved model can never be
        # hidden.
        names = set(models)
        names.update(self._directory_names())
        # Validate against the one map already in hand; on the first stale or
        # unindexed name, rescan the tree once and answer the rest from the
        # fresh map (not one rebuild per name).
        rebuilt = False
        listed = []
        for name in sorted(names):
            entry = models.get(name)
            if entry is not None and (rebuilt or self._entry_valid(name, entry)):
                listed.append(name)
                continue
            if not rebuilt:
                models = self.rebuild_index()
                rebuilt = True
                if models.get(name) is not None:
                    listed.append(name)
        return listed

    def versions(self, name: str) -> list[int]:
        """Versions with a complete (manifested) artifact, ascending.

        Answered from the root manifest index when its entry for ``name`` is
        validated by the model directory's mtime (one ``stat``); otherwise the
        filesystem scan runs and the index is healed.
        """
        return self._versions_of(self._check_name(name), self._read_index())

    def _entry_valid(self, name: str, entry: dict) -> bool:
        """Cheap distrust check of one index entry: the model dir's mtime
        still matches, and every indexed version still has its manifest
        (changes *inside* a version dir do not bump the model dir's mtime,
        so one stat per indexed version keeps a never-loadable version from
        being advertised)."""
        model_dir = self._model_dir(name)
        return entry["mtime_ns"] == self._model_mtime_ns(name) and all(
            (model_dir / f"v{v}" / MANIFEST_NAME).is_file()
            for v in entry["versions"]
        )

    def _versions_of(self, name: str, models: dict | None) -> list[int]:
        """:meth:`versions` against an already-read index map."""
        entry = None if models is None else models.get(name)
        if entry is not None and self._entry_valid(name, entry):
            return entry["versions"]
        try:
            scanned = self._scan_versions(name, complete_only=True)
        except ValueError:
            return []  # not a model name (stray directory, staging leftovers)
        indexed = entry["versions"] if entry is not None else []
        if (scanned != indexed or entry is not None) and (
            models is not None or scanned
        ):
            self.rebuild_index()
        return scanned

    def rebuild_index(self) -> dict:
        """Rescan the artifact tree and (best-effort) rewrite the root index."""
        models: dict[str, dict] = {}
        if self.root.is_dir():
            for name in sorted(self._directory_names()):
                # Stat before scanning: an artifact landing in between bumps
                # the mtime past the recorded one, so it can only force an
                # extra rescan later, never be hidden.
                mtime_ns = self._model_mtime_ns(name)
                if mtime_ns is None:
                    continue
                try:
                    found = self._scan_versions(name, complete_only=True)
                except ValueError:
                    continue  # not an artifact directory (e.g. staging leftovers)
                if found:
                    models[name] = {"versions": found, "mtime_ns": mtime_ns}
        self._write_index(models)
        return models

    def _directory_names(self) -> set[str]:
        """Model-shaped directory names across the flat and sharded layouts."""
        names: set[str] = set()
        if not self.root.is_dir():
            return names
        for entry in self.root.iterdir():
            if entry.is_dir() and self._valid_name(entry.name):
                names.add(entry.name)
        shards = self.root / SHARDS_DIRNAME
        if shards.is_dir():
            for shard in shards.iterdir():
                if not shard.is_dir():
                    continue
                for entry in shard.iterdir():
                    if entry.is_dir() and self._valid_name(entry.name):
                        names.add(entry.name)
        return names

    def _scan_versions(self, name: str, complete_only: bool) -> list[int]:
        model_dir = self._model_dir(self._check_name(name))
        if not model_dir.is_dir():
            return []
        found = []
        for entry in model_dir.iterdir():
            if not entry.is_dir() or not entry.name.startswith("v"):
                continue
            if complete_only and not (entry / MANIFEST_NAME).is_file():
                continue
            try:
                found.append(int(entry.name[1:]))
            except ValueError:
                continue
        return sorted(found)

    def latest_version(self, name: str) -> int:
        versions = self.versions(name)
        if not versions:
            raise KeyError(f"registry has no model named {name!r}")
        return versions[-1]

    # --------------------------------------------------------------------- save

    def save(
        self, model: PowerGear, name: str, metadata: dict | None = None
    ) -> ModelArtifact:
        """Persist a fitted estimator and return the new artifact handle."""
        if model.ensemble is None and model.model is None:
            raise ValueError("cannot save an unfitted PowerGear")
        if model._dims is None:
            raise ValueError("fitted model is missing its feature dimensions")
        name = self._check_name(name)
        # Count incomplete (manifest-less) version dirs too: a crashed save must
        # not block the next one from picking a fresh version number.
        occupied = self._scan_versions(name, complete_only=False)
        version = occupied[-1] + 1 if occupied else 1
        model_dir = self._model_dir(name)
        artifact_dir = model_dir / f"v{version}"
        # Stage into a temp sibling and rename at the end, so a failure mid-save
        # never leaves a half-written artifact under the final path.
        staging_dir = model_dir / f".staging-v{version}"
        if staging_dir.exists():
            shutil.rmtree(staging_dir)
        staging_dir.mkdir(parents=True)

        weights: dict[str, np.ndarray] = {}
        members_manifest: list[dict] | None = None
        if model.ensemble is not None:
            members_manifest = []
            for index, member in enumerate(model.ensemble.members):
                members_manifest.append(
                    {
                        "fold": member.fold,
                        "seed": member.seed,
                        "model_seed": member.model.config.seed,
                        "validation_error": float(member.validation_error),
                        "num_parameters": member.model.num_parameters(),
                    }
                )
                for key, value in member.model.state_dict().items():
                    weights[f"m{index}_{key}"] = value
        else:
            for key, value in model.model.state_dict().items():
                weights[f"m0_{key}"] = value
        if model.scaler is not None:
            for block in _SCALER_BLOCKS:
                value = getattr(model.scaler, block)
                if value is not None:
                    weights[f"scaler_{block}"] = np.asarray(value, dtype=np.float64)

        manifest = {
            "format_version": REGISTRY_FORMAT_VERSION,
            "library_version": LIBRARY_VERSION,
            "feature_version": FEATURE_VERSION,
            "name": name,
            "version": version,
            "target": model.config.target,
            "config": config_to_dict(model.config),
            "dims": list(model._dims),
            "members": members_manifest,
            "fingerprint": model.fingerprint(),
            "metadata": dict(metadata or {}),
            "weights_file": WEIGHTS_NAME,
        }
        try:
            np.savez_compressed(staging_dir / WEIGHTS_NAME, **weights)
            with open(staging_dir / MANIFEST_NAME, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
            staging_dir.rename(artifact_dir)
        except BaseException:
            shutil.rmtree(staging_dir, ignore_errors=True)
            raise
        self._record_version(name)
        return ModelArtifact(name=name, version=version, path=artifact_dir, manifest=manifest)

    # --------------------------------------------------------------------- load

    def load_artifact(self, name: str, version: int | None = None) -> ModelArtifact:
        name = self._check_name(name)
        version = version if version is not None else self.latest_version(name)
        artifact_dir = self._model_dir(name) / f"v{version}"
        manifest_path = artifact_dir / MANIFEST_NAME
        if not manifest_path.is_file():
            raise KeyError(f"registry has no artifact {name!r} v{version}")
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        return ModelArtifact(name=name, version=version, path=artifact_dir, manifest=manifest)

    def load(self, name: str, version: int | None = None) -> PowerGear:
        """Reconstruct a saved estimator bit-exactly."""
        return load_artifact_dir(self.load_artifact(name, version).path)

    # ---------------------------------------------------------------- internals

    def _index_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _model_mtime_ns(self, name: str) -> int | None:
        try:
            return self._model_dir(name).stat().st_mtime_ns
        except OSError:
            return None

    def _read_index(self) -> dict | None:
        """``name -> {"versions", "mtime_ns"}`` map, or ``None`` if unusable."""
        try:
            with open(self._index_path(), encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("format_version") != REGISTRY_FORMAT_VERSION:
            return None
        models = payload.get("models")
        if not isinstance(models, dict):
            return None
        normalised: dict[str, dict] = {}
        for name, entry in models.items():
            if not isinstance(entry, dict) or not isinstance(entry.get("mtime_ns"), int):
                return None
            try:
                versions = sorted(int(v) for v in entry["versions"])
            except (KeyError, TypeError, ValueError):
                return None
            normalised[name] = {"versions": versions, "mtime_ns": entry["mtime_ns"]}
        return normalised

    def _write_index(self, models: dict) -> None:
        """Atomically rewrite the root index; best-effort (read-only roots pass)."""
        payload = {
            "format_version": REGISTRY_FORMAT_VERSION,
            "models": {
                name: {
                    "versions": sorted(entry["versions"]),
                    "mtime_ns": entry["mtime_ns"],
                }
                for name, entry in sorted(models.items())
            },
        }
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            staging = self._index_path().with_suffix(".json.tmp")
            with open(staging, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            os.replace(staging, self._index_path())
        except OSError:
            pass

    def _record_version(self, name: str) -> None:
        """Fold one freshly saved artifact into the index (rebuild if absent).

        Stats the model directory *before* scanning it, so a concurrent save
        landing in between makes the recorded mtime stale — future reads then
        rescan instead of trusting an incomplete entry.
        """
        models = self._read_index()
        if models is None:
            self.rebuild_index()
            return
        mtime_ns = self._model_mtime_ns(name)
        versions = self._scan_versions(name, complete_only=True)
        if mtime_ns is None or not versions:
            return
        models[name] = {"versions": versions, "mtime_ns": mtime_ns}
        self._write_index(models)

    @staticmethod
    def _check_name(name: str) -> str:
        if not re.fullmatch(r"[A-Za-z0-9][A-Za-z0-9._-]*", name):
            raise ValueError(
                f"invalid model name {name!r} (letters, digits, '.', '_', '-'; "
                "must start with a letter or digit)"
            )
        if name == MANIFEST_NAME:
            raise ValueError(
                f"model name {name!r} is reserved for the registry's root index"
            )
        return name

    @classmethod
    def _valid_name(cls, name: str) -> bool:
        try:
            cls._check_name(name)
        except ValueError:
            return False
        return True


def load_artifact_dir(path: str | Path) -> PowerGear:
    """Load an artifact directory into a fitted :class:`PowerGear`.

    This is the fresh-process entry point: it needs nothing but the artifact
    path (the manifest and weights fully describe the estimator).
    """
    path = Path(path)
    with open(path / MANIFEST_NAME, encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest["format_version"] > REGISTRY_FORMAT_VERSION:
        raise ValueError(
            f"artifact format v{manifest['format_version']} is newer than this "
            f"library understands (v{REGISTRY_FORMAT_VERSION})"
        )
    if manifest["feature_version"] != FEATURE_VERSION:
        raise ValueError(
            f"artifact was trained on feature version {manifest['feature_version']} "
            f"but this library featurises at version {FEATURE_VERSION}"
        )
    config = config_from_dict(manifest["config"])
    model = PowerGear(config)
    node_dim, edge_dim, meta_dim = manifest["dims"]
    model._dims = (int(node_dim), int(edge_dim), int(meta_dim))

    with np.load(path / manifest["weights_file"], allow_pickle=False) as data:
        if config.scale_features:
            scaler = FeatureScaler()
            for block in _SCALER_BLOCKS:
                key = f"scaler_{block}"
                if key in data:
                    setattr(scaler, block, np.array(data[key]))
            model.scaler = scaler

        def member_state(index: int) -> dict[str, np.ndarray]:
            prefix = f"m{index}_"
            return {
                key[len(prefix):]: np.array(data[key])
                for key in data.files
                if key.startswith(prefix)
            }

        if manifest["members"] is not None:
            regressor = EnsembleRegressor(
                model_factory=model._model_factory,
                model_config=config.gnn,
                training_config=config.training,
                ensemble_config=config.ensemble,
            )
            for index, record in enumerate(manifest["members"]):
                member_config = replace(config.gnn, seed=record["model_seed"])
                network = model._model_factory(member_config)
                network.load_state_dict(member_state(index))
                regressor.members.append(
                    EnsembleMember(
                        model=network,
                        fold=record["fold"],
                        seed=record["seed"],
                        validation_error=record["validation_error"],
                    )
                )
            model.ensemble = regressor
            model.model = None
        else:
            network = model._model_factory(config.gnn)
            network.load_state_dict(member_state(0))
            model.model = network
            model.ensemble = None

    fingerprint = model.fingerprint()
    if fingerprint != manifest["fingerprint"]:
        raise ValueError(
            "artifact integrity check failed: reconstructed weights do not match "
            "the fingerprint recorded at save time"
        )
    return model
