"""Wire (JSON) shapes of the service's response objects.

Lives beside the service — not in :mod:`repro.runtime.http` — because two
independent layers serialise reports now: the HTTP front end (the blocking
``/v1/explore`` response) and the job subsystem (a finished job's ``result``
checkpoint).  Importing the HTTP server for a JSON shape would drag the whole
asyncio front end into the job runner's import graph.
"""

from __future__ import annotations

import math

__all__ = ["explore_report_to_json", "frontier_design_to_json"]


def frontier_design_to_json(design) -> dict:
    return {
        "kernel": design.kernel,
        "directives": design.directives,
        "latency_cycles": design.latency_cycles,
        # An exact-frontier design the explorer never sampled has no
        # prediction (NaN); null is its strict-JSON spelling.
        "predicted_power": (
            None if math.isnan(design.predicted_power) else design.predicted_power
        ),
        "measured_power": design.measured_power,
    }


def explore_report_to_json(report) -> dict:
    """The JSON shape of :class:`~repro.serve.service.ExploreReport`."""
    return {
        "kernel": report.kernel,
        "budget": report.budget,
        "adrs": report.adrs,
        "num_candidates": report.num_candidates,
        "num_sampled": report.result.num_sampled,
        "elapsed_seconds": report.elapsed_seconds,
        "frontier": [frontier_design_to_json(design) for design in report.frontier],
    }
