"""Content-addressed inference cache for the power-estimation service.

Serving a DSE loop hits the same designs over and over: the explorer
re-visits design points, different requests sweep overlapping pragma
configurations, and every estimate needs the same two expensive steps —
featurisation (HLS → activity → graph) and model inference.  Both are pure
functions of their inputs here (the whole pipeline is deterministic), so they
are memoised under content addresses:

* **featurisation** is keyed by ``sha256(kernel, directives, feature-version)``
  — the feature version (:data:`repro.graph.features.FEATURE_VERSION`) is part
  of the address so graphs featurised under an older scheme can never be
  served to a model trained on a newer one;
* **predictions** are keyed by a content hash of the sample's actual graph
  data (:func:`sample_fingerprint`) *plus the model's weight fingerprint*, so
  rolling a new registry version in automatically misses the old model's
  predictions, and a client-supplied sample can never poison the predictions
  of the service's own featurisation of the same directives.

Both stores are bounded LRU maps with hit / miss / eviction counters.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.graph.dataset import GraphSample
from repro.graph.features import FEATURE_VERSION


def content_key(kernel: str, directives: str, feature_version: int = FEATURE_VERSION) -> str:
    """Content address of one design point's featurisation."""
    digest = hashlib.sha256()
    for part in (kernel, directives, str(int(feature_version))):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def sample_fingerprint(sample: GraphSample) -> str:
    """Content hash of a sample's actual graph data.

    Predictions are keyed by this (plus the model fingerprint) rather than by
    the ``(kernel, directives)`` address: a client-supplied sample whose graph
    differs from the service's own featurisation of the same directives (other
    dataset config, stale feature scheme) then gets its own cache entry
    instead of poisoning the canonical one.
    """
    graph = sample.graph
    digest = hashlib.sha256()
    digest.update(f"{sample.kernel}\x00{sample.directives}\x00{FEATURE_VERSION}".encode("utf-8"))
    for block in (
        graph.node_features,
        graph.edge_index,
        graph.edge_features,
        graph.edge_types,
        graph.metadata,
        graph.node_is_arithmetic,
    ):
        digest.update(b"\x00")
        digest.update(np.ascontiguousarray(block).tobytes())
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit / miss / eviction counters of one LRU store."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


@dataclass
class LRUStore:
    """A bounded least-recently-used map with stats.

    ``on_evict(key, value)``, when given, fires for every capacity eviction —
    the deployment resolver uses it to surface artifact-cache churn (a bound
    smaller than the working set of live model artifacts would otherwise
    thrash silently, reloading weights from disk on every batch).
    """

    max_entries: int = 4096
    stats: CacheStats = field(default_factory=CacheStats)
    on_evict: object | None = field(default=None, repr=False)
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError("max_entries must be >= 1")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def get(self, key):
        """Return the cached value or ``None``; refreshes recency on hit."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        return None

    def put(self, key, value) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.max_entries:
            evicted_key, evicted_value = self._entries.popitem(last=False)
            self.stats.evictions += 1
            if self.on_evict is not None:
                self.on_evict(evicted_key, evicted_value)

    def clear(self) -> None:
        self._entries.clear()


class InferenceCache:
    """Featurisation + prediction memoisation shared across requests.

    ``persistent`` optionally attaches a second, on-disk tier (duck-typed to
    :class:`repro.runtime.cache.PersistentCache`): lookups fall through memory
    to disk (disk hits are promoted back into the memory tier), writes go
    through to both, and the ``cost_seconds`` recorded with each write feeds
    the disk tier's cost-aware eviction.  Memory-tier eviction never touches
    the disk tier, which is what lets hit rates survive a service restart.

    Thread-safe: the runtime drives this cache from coalescer flush threads
    and direct callers concurrently, so memory-tier accesses hold an internal
    lock (an unlocked ``OrderedDict`` get/evict race raises ``KeyError``).
    Disk-tier I/O runs *outside* that lock — the persistent tier carries its
    own — so a slow npz read or write never stalls concurrent memory hits.
    """

    def __init__(
        self,
        max_samples: int = 4096,
        max_predictions: int = 65536,
        persistent=None,
    ) -> None:
        self.samples = LRUStore(max_entries=max_samples)
        self.predictions = LRUStore(max_entries=max_predictions)
        self.persistent = persistent
        #: Duck-typed observability sink (anything with
        #: ``cache_event(kind, tier, outcome, seconds)``); the owning service
        #: sets it so every lookup/write lands in the hit/miss counters and
        #: the per-tier latency histograms.  Purely side-band: cache contents
        #: and return values are identical with or without an observer.
        self.observer = None
        self._lock = threading.RLock()

    # -------------------------------------------------------------------- keys

    @staticmethod
    def sample_key(kernel: str, directives: str) -> str:
        return content_key(kernel, directives)

    @staticmethod
    def prediction_key(sample_key: str, model_fingerprint: str) -> str:
        return f"{sample_key}:{model_fingerprint}"

    # ----------------------------------------------------------------- samples

    def get_sample(self, kernel: str, directives: str) -> GraphSample | None:
        key = self.sample_key(kernel, directives)
        start = time.perf_counter()
        with self._lock:
            cached = self.samples.get(key)
        self._observe(
            "sample", "memory", "hit" if cached is not None else "miss", start
        )
        if cached is not None:
            return cached
        if self.persistent is not None:
            start = time.perf_counter()
            from_disk = self.persistent.get_sample(key)
            self._observe(
                "sample", "disk", "hit" if from_disk is not None else "miss", start
            )
            if from_disk is not None:
                with self._lock:
                    self.samples.put(key, from_disk)
                return from_disk
        return None

    def put_sample(self, sample: GraphSample, cost_seconds: float = 0.0) -> str:
        key = self.sample_key(sample.kernel, sample.directives)
        start = time.perf_counter()
        with self._lock:
            self.samples.put(key, sample)
        self._observe("sample", "memory", "put", start)
        if self.persistent is not None:
            start = time.perf_counter()
            self.persistent.put_sample(key, sample, cost_seconds=cost_seconds)
            self._observe("sample", "disk", "put", start)
        return key

    # -------------------------------------------------------------- predictions

    def get_prediction(self, sample_key: str, model_fingerprint: str) -> float | None:
        key = self.prediction_key(sample_key, model_fingerprint)
        start = time.perf_counter()
        with self._lock:
            cached = self.predictions.get(key)
        self._observe(
            "prediction", "memory", "hit" if cached is not None else "miss", start
        )
        if cached is not None:
            return cached
        if self.persistent is not None:
            start = time.perf_counter()
            from_disk = self.persistent.get_prediction(key)
            self._observe(
                "prediction", "disk", "hit" if from_disk is not None else "miss", start
            )
            if from_disk is not None:
                with self._lock:
                    self.predictions.put(key, from_disk)
                return from_disk
        return None

    def put_prediction(
        self,
        sample_key: str,
        model_fingerprint: str,
        value: float,
        cost_seconds: float = 0.0,
    ) -> None:
        key = self.prediction_key(sample_key, model_fingerprint)
        start = time.perf_counter()
        with self._lock:
            self.predictions.put(key, float(value))
        self._observe("prediction", "memory", "put", start)
        if self.persistent is not None:
            start = time.perf_counter()
            self.persistent.put_prediction(key, float(value), cost_seconds=cost_seconds)
            self._observe("prediction", "disk", "put", start)

    def _observe(self, kind: str, tier: str, outcome: str, start: float) -> None:
        observer = self.observer
        if observer is not None:
            observer.cache_event(kind, tier, outcome, time.perf_counter() - start)

    # -------------------------------------------------------------------- stats

    def stats(self) -> dict:
        with self._lock:
            stats = {
                "samples": self.samples.stats.as_dict(),
                "predictions": self.predictions.stats.as_dict(),
            }
        if self.persistent is not None:
            stats["persistent"] = self.persistent.stats()
        return stats

    def clear(self) -> None:
        """Drop the memory tiers (the persistent tier survives, by design)."""
        with self._lock:
            self.samples.clear()
            self.predictions.clear()
