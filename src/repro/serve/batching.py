"""Block-diagonal graph packing with per-graph offset bookkeeping.

Batched inference packs N heterogeneous graphs into one block-diagonal
mega-graph (a disjoint union) so a whole request batch runs a single
vectorised forward pass per ensemble member instead of N.  The in-process
forward path lives in :mod:`repro.gnn` (``HeteroGraph.pack`` +
``GraphBatch``); this module is the *serving-layer* view of a pack — the
explicit bookkeeping that request splitting, result re-assembly and the
sharded worker runtime (:mod:`repro.runtime`) need:

* node / edge offsets of every member graph inside the pack,
* per-relation edge counts per member graph (the heterogeneous structure),
* splitting packed node- / edge- / graph-level results back per member.

Predictions through the packed path are numerically identical (to
floating-point round-off) to the per-sample loop: member-graph nodes stay
contiguous, so every segment sum adds the same values in the same order, and
all dense layers act row-wise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import active_backend
from repro.graph.dataset import GraphSample
from repro.graph.hetero_graph import RELATION_TYPES, HeteroGraph

# Canonically defined in the runtime layer (which must not depend on serve);
# re-exported here because sharding is part of the serving-layer batching API.
# Import from the runtime *package*, not the pool module: ``repro.runtime``
# is the stable surface, and the pool module now also hosts the pooled
# forward machinery this layer must not bind to.
from repro.runtime import shard_evenly

__all__ = [
    "PackedBatch",
    "pack_graphs",
    "pack_samples",
    "iter_chunks",
    "shard_evenly",
]


@dataclass
class PackedBatch:
    """One block-diagonal mega-graph plus its per-member bookkeeping."""

    graph: HeteroGraph
    #: ``node_offsets[i] : node_offsets[i + 1]`` are graph ``i``'s node rows.
    node_offsets: np.ndarray
    #: ``edge_offsets[i] : edge_offsets[i + 1]`` are graph ``i``'s edge columns.
    edge_offsets: np.ndarray
    #: ``relation_edge_counts[i, r]`` is the number of relation-``r`` edges of
    #: graph ``i`` (rows sum to the graph's edge count).
    relation_edge_counts: np.ndarray

    @property
    def num_graphs(self) -> int:
        return self.graph.num_graphs

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def node_slice(self, graph_id: int) -> slice:
        return slice(int(self.node_offsets[graph_id]), int(self.node_offsets[graph_id + 1]))

    def edge_slice(self, graph_id: int) -> slice:
        return slice(int(self.edge_offsets[graph_id]), int(self.edge_offsets[graph_id + 1]))

    def split_node_values(self, values: np.ndarray) -> list[np.ndarray]:
        """Split a per-node array (first axis = packed nodes) per member graph."""
        values = np.asarray(values)
        if values.shape[0] != self.num_nodes:
            raise ValueError("per-node values disagree with the packed node count")
        return [values[self.node_slice(i)] for i in range(self.num_graphs)]

    def split_edge_values(self, values: np.ndarray) -> list[np.ndarray]:
        """Split a per-edge array (first axis = packed edges) per member graph."""
        values = np.asarray(values)
        if values.shape[0] != self.num_edges:
            raise ValueError("per-edge values disagree with the packed edge count")
        return [values[self.edge_slice(i)] for i in range(self.num_graphs)]

    def split_graph_values(self, values: np.ndarray) -> np.ndarray:
        """Validate and return a per-graph result vector (e.g. predictions)."""
        values = np.asarray(values).reshape(-1)
        if values.shape[0] != self.num_graphs:
            raise ValueError("per-graph values disagree with the packed graph count")
        return values


def pack_graphs(graphs: list[HeteroGraph]) -> PackedBatch:
    """Pack ``graphs`` into one block-diagonal mega-graph with bookkeeping."""
    if not graphs:
        raise ValueError("cannot pack an empty list of graphs")
    merged = HeteroGraph.pack(graphs)
    backend = active_backend()
    node_offsets = np.zeros(len(graphs) + 1, dtype=np.int64)
    edge_offsets = np.zeros(len(graphs) + 1, dtype=np.int64)
    relation_edge_counts = np.zeros((len(graphs), len(RELATION_TYPES)), dtype=np.int64)
    for index, graph in enumerate(graphs):
        node_offsets[index + 1] = node_offsets[index] + graph.num_nodes
        edge_offsets[index + 1] = edge_offsets[index] + graph.num_edges
        if graph.num_edges:
            # Vectorised occurrence counting through the backend (same
            # integral counts as the historical `np.add.at`, one C pass).
            relation_edge_counts[index] = backend.bincount(
                graph.edge_types, minlength=len(RELATION_TYPES)
            )
    return PackedBatch(
        graph=merged,
        node_offsets=node_offsets,
        edge_offsets=edge_offsets,
        relation_edge_counts=relation_edge_counts,
    )


def pack_samples(samples: list[GraphSample]) -> PackedBatch:
    """Pack the graphs of ``samples`` (order preserved)."""
    return pack_graphs([sample.graph for sample in samples])


def iter_chunks(count: int, chunk_size: int | None):
    """Yield ``slice`` objects covering ``range(count)`` in chunks.

    ``chunk_size=None`` means one chunk covering everything; ``count == 0``
    yields nothing.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    size = max(count, 1) if chunk_size is None else chunk_size
    for start in range(0, count, size):
        yield slice(start, min(start + size, count))
